"""Reactions with integer stoichiometry and mass-action kinetics.

Following the paper (Section 1.3) we use the standard stochastic mass-action
propensities in unit volume:

* a unary reaction ``X -> ...`` with rate constant ``k`` has propensity
  ``k * x`` in a configuration with ``x`` copies of ``X``;
* a binary reaction between two *distinct* species ``X + Y -> ...`` with rate
  constant ``k`` has propensity ``k * x * y``;
* a binary reaction between two individuals of the *same* species
  ``X + X -> ...`` with rate constant ``k`` has propensity
  ``k * x * (x - 1) / 2`` (number of unordered pairs).

The paper treats the interspecific reactions with reactants ``X0 + X1`` and
``X1 + X0`` as formally distinct reactions (each with its own rate ``αᵢ``);
this module supports that convention directly since reactions are identified
by their label, not by their reactant multiset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.crn.species import Species
from repro.exceptions import InvalidReactionError

__all__ = ["Reaction"]


def _normalise_stoichiometry(
    mapping: Mapping[Species, int], *, side: str
) -> dict[Species, int]:
    """Validate and copy one side of a reaction's stoichiometry."""
    normalised: dict[Species, int] = {}
    for species, count in mapping.items():
        if not isinstance(species, Species):
            raise InvalidReactionError(
                f"{side} keys must be Species instances, got {type(species).__name__}"
            )
        if not isinstance(count, (int,)) or isinstance(count, bool):
            raise InvalidReactionError(
                f"{side} stoichiometric coefficient for {species} must be an int, "
                f"got {count!r}"
            )
        if count < 0:
            raise InvalidReactionError(
                f"{side} stoichiometric coefficient for {species} must be "
                f"non-negative, got {count}"
            )
        if count > 0:
            normalised[species] = count
    return normalised


@dataclass(frozen=True)
class Reaction:
    """A single reaction with mass-action kinetics.

    Parameters
    ----------
    reactants:
        Mapping from species to the number of copies consumed.
    products:
        Mapping from species to the number of copies produced.
    rate:
        Non-negative mass-action rate constant.
    label:
        Human-readable identifier, e.g. ``"birth:X0"`` or ``"inter:X0+X1"``.
        Labels are used by event classifiers and must be unique per network.

    Notes
    -----
    Only reactions of order at most two (at most two reactant individuals in
    total) are supported, matching the models in the paper.  Reactions of
    order zero (pure production, e.g. inflow) are allowed for generality and
    have constant propensity equal to their rate.

    Examples
    --------
    >>> x0 = Species("X0")
    >>> birth = Reaction({x0: 1}, {x0: 2}, rate=1.0, label="birth:X0")
    >>> birth.propensity({x0: 10})
    10.0
    >>> annihilation = Reaction({x0: 2}, {}, rate=0.5, label="intra:X0")
    >>> annihilation.propensity({x0: 4})
    3.0
    """

    reactants: Mapping[Species, int]
    products: Mapping[Species, int]
    rate: float
    label: str = ""

    def __post_init__(self) -> None:
        reactants = _normalise_stoichiometry(self.reactants, side="reactant")
        products = _normalise_stoichiometry(self.products, side="product")
        object.__setattr__(self, "reactants", reactants)
        object.__setattr__(self, "products", products)
        if not isinstance(self.rate, (int, float)) or isinstance(self.rate, bool):
            raise InvalidReactionError(f"rate must be a number, got {self.rate!r}")
        if self.rate < 0:
            raise InvalidReactionError(f"rate must be non-negative, got {self.rate}")
        object.__setattr__(self, "rate", float(self.rate))
        if self.order > 2:
            raise InvalidReactionError(
                "only reactions with at most two reactant individuals are "
                f"supported, got order {self.order} for {self.label or self!r}"
            )
        if not self.label:
            object.__setattr__(self, "label", self._default_label())

    # ------------------------------------------------------------------
    # Structural properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Total number of reactant individuals (0, 1, or 2)."""
        return sum(self.reactants.values())

    @property
    def is_unary(self) -> bool:
        """True for reactions with exactly one reactant individual."""
        return self.order == 1

    @property
    def is_binary(self) -> bool:
        """True for reactions with exactly two reactant individuals."""
        return self.order == 2

    @property
    def is_homogeneous_pair(self) -> bool:
        """True for binary reactions between two individuals of one species."""
        return self.order == 2 and len(self.reactants) == 1

    @property
    def species(self) -> frozenset[Species]:
        """All species appearing on either side of the reaction."""
        return frozenset(self.reactants) | frozenset(self.products)

    def net_change(self) -> dict[Species, int]:
        """Net stoichiometric change per species when the reaction fires."""
        change: dict[Species, int] = {}
        for species, count in self.products.items():
            change[species] = change.get(species, 0) + count
        for species, count in self.reactants.items():
            change[species] = change.get(species, 0) - count
        return {species: delta for species, delta in change.items() if delta != 0}

    # ------------------------------------------------------------------
    # Kinetics
    # ------------------------------------------------------------------
    def propensity(self, state: Mapping[Species, int]) -> float:
        """Mass-action propensity of this reaction in *state*.

        Missing species are treated as having count zero.
        """
        if self.rate == 0.0:
            return 0.0
        if self.order == 0:
            return self.rate
        if self.is_unary:
            (species, _count), = self.reactants.items()
            return self.rate * max(0, state.get(species, 0))
        if self.is_homogeneous_pair:
            (species, _count), = self.reactants.items()
            x = max(0, state.get(species, 0))
            return self.rate * x * (x - 1) / 2.0
        # Heterogeneous binary reaction.
        first, second = self.reactants
        return self.rate * max(0, state.get(first, 0)) * max(0, state.get(second, 0))

    def can_fire(self, state: Mapping[Species, int]) -> bool:
        """Whether *state* contains enough reactant copies for one firing."""
        return all(state.get(species, 0) >= count for species, count in self.reactants.items())

    def apply(self, state: Mapping[Species, int]) -> dict[Species, int]:
        """Return the configuration obtained by firing this reaction once.

        Raises
        ------
        InvalidReactionError
            If the reaction cannot fire in *state*.
        """
        if not self.can_fire(state):
            raise InvalidReactionError(
                f"reaction {self.label!r} cannot fire in state {dict(state)!r}"
            )
        new_state = dict(state)
        for species, delta in self.net_change().items():
            new_state[species] = new_state.get(species, 0) + delta
        return new_state

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def _default_label(self) -> str:
        return f"{self._side_str(self.reactants)} -> {self._side_str(self.products)}"

    @staticmethod
    def _side_str(side: Mapping[Species, int]) -> str:
        if not side:
            return "0"
        terms = []
        for species in sorted(side):
            count = side[species]
            terms.append(species.name if count == 1 else f"{count} {species.name}")
        return " + ".join(terms)

    def __str__(self) -> str:
        return (
            f"{self._side_str(self.reactants)} --{self.rate:g}--> "
            f"{self._side_str(self.products)}"
        )
