"""Chemical reaction network (CRN) substrate.

The paper expresses both Lotka–Volterra variants as chemical reaction networks
with mass-action kinetics (Section 1.3).  This subpackage provides a small but
complete CRN formalism:

* :class:`~repro.crn.species.Species` — named species with optional metadata,
* :class:`~repro.crn.reaction.Reaction` — a reaction with integer stoichiometry
  and a mass-action rate constant,
* :class:`~repro.crn.network.ReactionNetwork` — a validated collection of
  species and reactions exposing propensity evaluation and the stoichiometry
  matrix,
* :class:`~repro.crn.compiled.CompiledNetwork` — the same network lowered to
  dense numpy arrays with vectorized (and batched) mass-action propensity
  evaluation, used by every simulator's inner loop,
* :mod:`~repro.crn.builders` — convenience constructors for the networks used
  throughout the paper (self-destructive / non-self-destructive LV, birth–death
  chains, the δ=0 models of prior work).

The general simulators in :mod:`repro.kinetics` operate on any
:class:`ReactionNetwork` via its compiled form; the specialised two-species
simulators in :mod:`repro.lv` bypass this layer for speed but are validated
against it in the test suite.
"""

from repro.crn.species import Species
from repro.crn.reaction import Reaction
from repro.crn.network import ReactionNetwork
from repro.crn.compiled import CompiledNetwork
from repro.crn.builders import (
    build_birth_death_network,
    build_lv_network,
    build_pure_birth_network,
    build_single_species_logistic_network,
)

__all__ = [
    "Species",
    "Reaction",
    "ReactionNetwork",
    "CompiledNetwork",
    "build_birth_death_network",
    "build_lv_network",
    "build_pure_birth_network",
    "build_single_species_logistic_network",
]
