"""Compiled reaction networks: dense-array lowering of :class:`ReactionNetwork`.

The generic :class:`~repro.crn.network.ReactionNetwork` evaluates propensities
by iterating over :class:`~repro.crn.reaction.Reaction` objects and looking
species counts up in ``{Species: count}`` dictionaries.  That is convenient
for model construction and validation but far too slow for the inner loop of a
stochastic simulator, which evaluates the full propensity vector once per
event — millions of times per experiment.

:class:`CompiledNetwork` lowers a validated network once, at construction
time, into a handful of dense numpy arrays:

* ``rates`` — the mass-action rate constants, one per reaction,
* ``reactant_matrix`` — the reactant-order matrix ``(R, S)`` of reactant
  stoichiometric coefficients,
* ``changes`` — the net state change per reaction, ``(R, S)`` (the transpose
  of the network's stoichiometry matrix), and
* per-reaction index/offset vectors that reduce mass-action evaluation (for
  reactions of order ≤ 2, the only orders the paper's models use) to a fixed
  sequence of vectorized gathers and multiplies.

The compiled evaluation reproduces the dict-based
:meth:`Reaction.propensity <repro.crn.reaction.Reaction.propensity>` values
**bitwise-exactly**: it performs the same floating-point operations in the
same order (``rate · x``, ``rate · x · y``, ``rate · x · (x−1) / 2``), so
simulators can switch between the two paths without perturbing trajectories.

Reactions whose kinetics are *not* mass action can be attached through the
``overrides`` fallback slot: a mapping from reaction label to a callable
``f(state_vector) -> float`` that replaces the compiled value for that
reaction.  This keeps the fast path fully vectorized while leaving an escape
hatch for future non-mass-action rate laws (e.g. Hill or Michaelis–Menten
kinetics).  An override may additionally understand batched states: when it
accepts a ``(B, S)`` matrix and returns a length-``B`` vector, batched
propensity evaluation stays vectorized end to end (see
:meth:`CompiledNetwork.propensities_batch`).

Batched evaluation (:meth:`CompiledNetwork.propensities_batch`) evaluates the
whole propensity matrix for ``B`` replica states at once — the building block
for lock-step ensembles over arbitrary networks.  (The specialised two-species
ensemble in :mod:`repro.lv.ensemble` inlines its eight propensity rows instead
of going through the generic gather path.)
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.crn.network import ReactionNetwork
from repro.exceptions import InvalidConfigurationError, ModelError

__all__ = ["CompiledNetwork"]

#: Type of a non-mass-action propensity override: state vector -> propensity.
PropensityOverride = Callable[[np.ndarray], float]


class CompiledNetwork:
    """A :class:`ReactionNetwork` lowered to dense numpy arrays.

    Parameters
    ----------
    network:
        The validated network to compile.  The compiled view is a snapshot:
        reactions added to the network afterwards are not picked up.
    overrides:
        Optional ``{reaction_label: callable}`` fallback slot for reactions
        whose propensity is not mass action.  The callable receives the state
        vector (numpy ``int64`` array in species order) and must return a
        float propensity.

    Examples
    --------
    >>> from repro.crn import build_lv_network
    >>> network = build_lv_network(beta=1.0, delta=1.0, alpha0=0.5, alpha1=0.5)
    >>> compiled = CompiledNetwork(network)
    >>> import numpy as np
    >>> vector = np.array([3, 2])
    >>> bool(np.all(compiled.propensities(vector) ==
    ...             network.propensities(network.vector_to_state(vector))))
    True
    """

    def __init__(
        self,
        network: ReactionNetwork,
        *,
        overrides: Mapping[str, PropensityOverride] | None = None,
    ) -> None:
        if network.num_reactions == 0:
            raise ModelError("cannot compile a network with no reactions")
        self.network = network
        self.num_species = network.num_species
        self.num_reactions = network.num_reactions
        self.labels: tuple[str, ...] = tuple(r.label for r in network.reactions)

        rates = np.empty(self.num_reactions, dtype=np.float64)
        reactant_matrix = np.zeros((self.num_reactions, self.num_species), dtype=np.int64)
        # Index arrays drive the vectorized evaluation.  A virtual species with
        # constant count 1 (index ``num_species``) stands in for "no reactant",
        # so order-0 and unary reactions share the binary code path without
        # branches: propensity = rate * x[first] * (x[second] - offset) / div.
        one = self.num_species
        first = np.full(self.num_reactions, one, dtype=np.intp)
        second = np.full(self.num_reactions, one, dtype=np.intp)
        offsets = np.zeros(self.num_reactions, dtype=np.int64)
        divisors = np.ones(self.num_reactions, dtype=np.float64)
        orders = np.zeros(self.num_reactions, dtype=np.int64)

        for j, reaction in enumerate(network.reactions):
            rates[j] = reaction.rate
            for species, count in reaction.reactants.items():
                reactant_matrix[j, network.species_index(species)] = count
            orders[j] = reaction.order
            # Preserve the reactant dict's iteration order so the compiled
            # multiply order matches Reaction.propensity bit for bit.
            reactants = list(reaction.reactants.items())
            if reaction.order == 1:
                first[j] = network.species_index(reactants[0][0])
            elif reaction.order == 2 and reaction.is_homogeneous_pair:
                index = network.species_index(reactants[0][0])
                first[j] = index
                second[j] = index
                offsets[j] = 1
                divisors[j] = 2.0
            elif reaction.order == 2:
                first[j] = network.species_index(reactants[0][0])
                second[j] = network.species_index(reactants[1][0])

        self.rates = rates
        self.reactant_matrix = reactant_matrix
        self.changes = network.stoichiometry_matrix().T.copy()  # (R, S)
        self.orders = orders
        self._first = first
        self._second = second
        self._offsets = offsets
        self._divisors = divisors
        # Reaction.propensity returns exactly 0.0 for zero-rate reactions
        # (short-circuit before any multiplication); mirror that so the two
        # paths stay bitwise-identical even where 0 * (x - 1) would yield -0.0.
        self._zero_rate = np.nonzero(rates == 0.0)[0]

        self._overrides: list[tuple[int, PropensityOverride]] = []
        if overrides:
            label_index = {label: j for j, label in enumerate(self.labels)}
            for label, fn in overrides.items():
                if label not in label_index:
                    raise ModelError(f"override for unknown reaction label: {label!r}")
                if not callable(fn):
                    raise ModelError(f"override for {label!r} is not callable")
                self._overrides.append((label_index[label], fn))

        # Scratch buffer for single-state evaluation: `propensities` sits in
        # the scalar simulators' inner loop, so the extended state vector
        # (counts plus the virtual constant-1 species) is allocated once here
        # instead of once per call.  The constant-1 slot never changes.
        self._extended_scratch = np.empty(self.num_species + 1, dtype=np.int64)
        self._extended_scratch[self.num_species] = 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def has_overrides(self) -> bool:
        """Whether any reaction uses a non-mass-action fallback."""
        return bool(self._overrides)

    def __repr__(self) -> str:
        return (
            f"<CompiledNetwork: {self.num_species} species, "
            f"{self.num_reactions} reactions, "
            f"{len(self._overrides)} overrides>"
        )

    # ------------------------------------------------------------------
    # Propensity evaluation
    # ------------------------------------------------------------------
    def propensities(self, state: Sequence[int] | np.ndarray) -> np.ndarray:
        """Mass-action propensity vector for one state vector.

        *state* is a count vector in the network's species order.  Negative
        entries are clamped to zero, matching the dict-based evaluation.
        """
        state = np.asarray(state)
        if state.shape != (self.num_species,):
            raise InvalidConfigurationError(
                f"expected a state vector of length {self.num_species}, "
                f"got shape {state.shape}"
            )
        # Reuse the preallocated scratch (the constant-1 slot is already set);
        # only `values` below is freshly allocated and returned to the caller.
        extended = self._extended_scratch
        np.maximum(state, 0, out=extended[: self.num_species])

        # rate * x_first, then * (x_second - offset), then / divisor — the
        # exact operation order of Reaction.propensity for every order ≤ 2.
        values = self.rates * extended[self._first]
        values *= extended[self._second] - self._offsets
        values /= self._divisors
        if self._zero_rate.size:
            values[self._zero_rate] = 0.0
        for index, fn in self._overrides:
            values[index] = float(fn(state))
        return values

    def total_propensity(self, state: Sequence[int] | np.ndarray) -> float:
        """Total propensity ``φ(x)`` of the state vector."""
        return float(self.propensities(state).sum())

    def propensities_batch(self, states: np.ndarray) -> np.ndarray:
        """Propensity matrix ``(B, R)`` for a batch of ``B`` state vectors.

        *states* must have shape ``(B, num_species)``.  The mass-action part
        is fully vectorized.  Overrides are evaluated **vectorized** when the
        callable supports it — ``fn(states)`` returning a length-``B``
        vector — falling back to a per-row Python loop for plain scalar
        overrides (``fn(state) -> float``), so existing overrides keep
        working unchanged.
        """
        states = np.asarray(states)
        if states.ndim != 2 or states.shape[1] != self.num_species:
            raise InvalidConfigurationError(
                f"expected states of shape (B, {self.num_species}), "
                f"got shape {states.shape}"
            )
        batch = states.shape[0]
        extended = np.empty((batch, self.num_species + 1), dtype=np.int64)
        np.maximum(states, 0, out=extended[:, : self.num_species])
        extended[:, self.num_species] = 1

        values = self.rates * extended[:, self._first]
        values *= extended[:, self._second] - self._offsets
        values /= self._divisors
        if self._zero_rate.size:
            values[:, self._zero_rate] = 0.0
        for index, fn in self._overrides:
            values[:, index] = self._evaluate_override_batch(fn, states, batch)
        return values

    @staticmethod
    def _evaluate_override_batch(
        fn: PropensityOverride, states: np.ndarray, batch: int
    ) -> np.ndarray:
        """One override column for a batch, vectorized when *fn* allows it.

        The callable is first offered the whole ``(B, S)`` matrix; any result
        that is not a length-``B`` vector (including an exception — scalar
        overrides typically fail on 2-D input) falls back to the per-row
        evaluation that matches :meth:`propensities` exactly.  When ``B``
        equals the species count the shapes are ambiguous (a scalar override
        reading ``states[0]`` would return a plausible-looking vector), so
        the vectorized attempt is skipped.
        """
        if batch != states.shape[1]:
            try:
                column = np.asarray(fn(states), dtype=np.float64)
            except Exception:
                column = None
            else:
                if column.shape != (batch,):
                    column = None
            if column is not None:
                return column
        return np.array([float(fn(states[row])) for row in range(batch)])
