"""Reaction networks: validated collections of species and reactions."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.exceptions import InvalidConfigurationError, ModelError

__all__ = ["ReactionNetwork"]


class ReactionNetwork:
    """A chemical reaction network with mass-action kinetics.

    The network owns an ordered list of species and an ordered list of
    reactions.  The ordering is significant: configurations can be expressed
    either as ``{Species: count}`` mappings or as integer vectors following
    the species order, and propensity vectors follow the reaction order.

    Parameters
    ----------
    species:
        The species of the network.  Any species referenced by a reaction but
        not listed explicitly is appended automatically (in reaction order).
    reactions:
        The reactions of the network.  Labels must be unique.

    Examples
    --------
    >>> x = Species("X")
    >>> network = ReactionNetwork(
    ...     species=[x],
    ...     reactions=[
    ...         Reaction({x: 1}, {x: 2}, rate=1.0, label="birth"),
    ...         Reaction({x: 1}, {}, rate=1.0, label="death"),
    ...     ],
    ... )
    >>> network.total_propensity({x: 3})
    6.0
    """

    def __init__(
        self,
        species: Iterable[Species] = (),
        reactions: Iterable[Reaction] = (),
        *,
        name: str = "",
    ) -> None:
        self.name = name
        self._species: list[Species] = []
        self._species_index: dict[Species, int] = {}
        self._reactions: list[Reaction] = []
        self._labels: dict[str, int] = {}
        for item in species:
            self.add_species(item)
        for reaction in reactions:
            self.add_reaction(reaction)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_species(self, species: Species) -> Species:
        """Add *species* to the network (idempotent by name)."""
        if not isinstance(species, Species):
            raise ModelError(f"expected a Species, got {type(species).__name__}")
        if species in self._species_index:
            return self._species[self._species_index[species]]
        self._species_index[species] = len(self._species)
        self._species.append(species)
        return species

    def add_reaction(self, reaction: Reaction) -> Reaction:
        """Add *reaction*, registering any new species it references."""
        if not isinstance(reaction, Reaction):
            raise ModelError(f"expected a Reaction, got {type(reaction).__name__}")
        if reaction.label in self._labels:
            raise ModelError(f"duplicate reaction label: {reaction.label!r}")
        for species in reaction.species:
            self.add_species(species)
        self._labels[reaction.label] = len(self._reactions)
        self._reactions.append(reaction)
        return reaction

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def species(self) -> tuple[Species, ...]:
        """The species of the network, in index order."""
        return tuple(self._species)

    @property
    def reactions(self) -> tuple[Reaction, ...]:
        """The reactions of the network, in index order."""
        return tuple(self._reactions)

    @property
    def num_species(self) -> int:
        return len(self._species)

    @property
    def num_reactions(self) -> int:
        return len(self._reactions)

    def species_index(self, species: Species) -> int:
        """Index of *species* in the network's species ordering."""
        try:
            return self._species_index[species]
        except KeyError:
            raise ModelError(f"unknown species: {species}") from None

    def reaction_by_label(self, label: str) -> Reaction:
        """Look up a reaction by its label."""
        try:
            return self._reactions[self._labels[label]]
        except KeyError:
            raise ModelError(f"unknown reaction label: {label!r}") from None

    def __iter__(self) -> Iterator[Reaction]:
        return iter(self._reactions)

    def __len__(self) -> int:
        return len(self._reactions)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<ReactionNetwork{label}: {self.num_species} species, "
            f"{self.num_reactions} reactions>"
        )

    # ------------------------------------------------------------------
    # Configurations
    # ------------------------------------------------------------------
    def validate_state(self, state: Mapping[Species, int]) -> dict[Species, int]:
        """Validate a configuration mapping and fill in missing species as 0."""
        validated: dict[Species, int] = {}
        for species, count in state.items():
            if species not in self._species_index:
                raise InvalidConfigurationError(f"unknown species in state: {species}")
            if not isinstance(count, (int, np.integer)) or isinstance(count, bool):
                raise InvalidConfigurationError(
                    f"count for {species} must be an integer, got {count!r}"
                )
            if count < 0:
                raise InvalidConfigurationError(
                    f"count for {species} must be non-negative, got {count}"
                )
            validated[species] = int(count)
        for species in self._species:
            validated.setdefault(species, 0)
        return validated

    def state_to_vector(self, state: Mapping[Species, int]) -> np.ndarray:
        """Convert a configuration mapping to an integer vector."""
        validated = self.validate_state(state)
        return np.array([validated[species] for species in self._species], dtype=np.int64)

    def vector_to_state(self, vector: Sequence[int]) -> dict[Species, int]:
        """Convert an integer vector to a configuration mapping."""
        vector = np.asarray(vector)
        if vector.shape != (self.num_species,):
            raise InvalidConfigurationError(
                f"expected a vector of length {self.num_species}, got shape {vector.shape}"
            )
        if np.any(vector < 0):
            raise InvalidConfigurationError("species counts must be non-negative")
        return {species: int(vector[i]) for i, species in enumerate(self._species)}

    # ------------------------------------------------------------------
    # Kinetics
    # ------------------------------------------------------------------
    def propensities(self, state: Mapping[Species, int]) -> np.ndarray:
        """Vector of mass-action propensities, one entry per reaction."""
        return np.array(
            [reaction.propensity(state) for reaction in self._reactions], dtype=float
        )

    def total_propensity(self, state: Mapping[Species, int]) -> float:
        """Total propensity φ(x) of the configuration *state* (paper, Sec. 1.3)."""
        return float(self.propensities(state).sum())

    def stoichiometry_matrix(self) -> np.ndarray:
        """Net-change matrix of shape ``(num_species, num_reactions)``.

        Column ``j`` is the net change applied to the species-count vector
        when reaction ``j`` fires once.
        """
        matrix = np.zeros((self.num_species, self.num_reactions), dtype=np.int64)
        for j, reaction in enumerate(self._reactions):
            for species, delta in reaction.net_change().items():
                matrix[self._species_index[species], j] = delta
        return matrix

    def conserved_total(self) -> bool:
        """Whether every reaction preserves the total population count.

        Population-protocol-style models (Section 2.2 of the paper) conserve
        the total count; Lotka–Volterra models do not.
        """
        return all(
            sum(reaction.net_change().values()) == 0 for reaction in self._reactions
        )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line, human-readable description of the network."""
        lines = [f"ReactionNetwork {self.name or '(unnamed)'}"]
        lines.append(f"  species ({self.num_species}): " + ", ".join(s.name for s in self._species))
        lines.append(f"  reactions ({self.num_reactions}):")
        for reaction in self._reactions:
            lines.append(f"    [{reaction.label}] {reaction}")
        return "\n".join(lines)
