"""Convenience constructors for the reaction networks used in the paper.

The central builder is :func:`build_lv_network`, which assembles the
two-species competitive Lotka–Volterra network of Section 1.3 for either
competition mechanism:

self-destructive (Eq. 1)::

    Xi --β--> Xi + Xi      Xi --δ--> ∅
    Xi + X(1-i) --αi--> ∅   Xi + Xi --γi--> ∅

non-self-destructive (Eq. 2)::

    Xi --β--> Xi + Xi      Xi --δ--> ∅
    Xi + X(1-i) --αi--> Xi  Xi + Xi --γi--> Xi

Reaction labels follow a fixed scheme (``birth:Xi``, ``death:Xi``,
``inter:Xi`` for the interspecific reaction in which species ``i`` is the
*aggressor* at rate ``αi``, and ``intra:Xi``) which the event classifiers in
:mod:`repro.kinetics.events` and :mod:`repro.lv` rely on.
"""

from __future__ import annotations


from repro.crn.network import ReactionNetwork
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.exceptions import ModelError

__all__ = [
    "build_lv_network",
    "build_birth_death_network",
    "build_pure_birth_network",
    "build_single_species_logistic_network",
]


def _check_rate(name: str, value: float) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ModelError(f"rate {name} must be a number, got {value!r}")
    if value < 0:
        raise ModelError(f"rate {name} must be non-negative, got {value}")
    return float(value)


def build_lv_network(
    *,
    beta: float,
    delta: float,
    alpha0: float,
    alpha1: float,
    gamma0: float = 0.0,
    gamma1: float = 0.0,
    self_destructive: bool = True,
    species_names: tuple[str, str] = ("X0", "X1"),
) -> ReactionNetwork:
    """Build the two-species competitive Lotka–Volterra network.

    Parameters
    ----------
    beta, delta:
        Per-capita birth and death rates (identical for both species, as in
        the paper's neutral reproduction assumption).
    alpha0, alpha1:
        Interspecific interference rates.  ``alpha_i`` is the rate at which an
        individual of species *i* encounters an individual of the other
        species; under self-destructive competition both die, under
        non-self-destructive competition only the encountered individual of
        species ``1 - i`` dies.
    gamma0, gamma1:
        Intraspecific interference rates within species 0 and 1.
    self_destructive:
        Select the mechanism: ``True`` for Eq. (1), ``False`` for Eq. (2).
    species_names:
        Names of the two input species.

    Returns
    -------
    ReactionNetwork
        Network with species ``X0``, ``X1`` and up to eight reactions, with
        zero-rate reactions omitted.
    """
    beta = _check_rate("beta", beta)
    delta = _check_rate("delta", delta)
    alphas = (_check_rate("alpha0", alpha0), _check_rate("alpha1", alpha1))
    gammas = (_check_rate("gamma0", gamma0), _check_rate("gamma1", gamma1))

    x = (Species(species_names[0]), Species(species_names[1]))
    mechanism = "self-destructive" if self_destructive else "non-self-destructive"
    network = ReactionNetwork(species=x, name=f"LV ({mechanism})")

    for i in (0, 1):
        if beta > 0:
            network.add_reaction(
                Reaction({x[i]: 1}, {x[i]: 2}, rate=beta, label=f"birth:{x[i].name}")
            )
        if delta > 0:
            network.add_reaction(
                Reaction({x[i]: 1}, {}, rate=delta, label=f"death:{x[i].name}")
            )
        if alphas[i] > 0:
            # Species i is the aggressor: encounter at rate alpha_i.  Under
            # self-destructive competition both reactants are removed; under
            # non-self-destructive competition the aggressor survives.
            products = {} if self_destructive else {x[i]: 1}
            network.add_reaction(
                Reaction(
                    {x[i]: 1, x[1 - i]: 1},
                    products,
                    rate=alphas[i],
                    label=f"inter:{x[i].name}",
                )
            )
        if gammas[i] > 0:
            products = {} if self_destructive else {x[i]: 1}
            network.add_reaction(
                Reaction(
                    {x[i]: 2},
                    products,
                    rate=gammas[i],
                    label=f"intra:{x[i].name}",
                )
            )
    return network


def build_birth_death_network(
    *,
    birth_rate: float,
    death_rate: float,
    species_name: str = "X",
) -> ReactionNetwork:
    """Build a single-species linear birth–death network.

    The network has reactions ``X -> 2X`` at per-capita rate *birth_rate* and
    ``X -> ∅`` at per-capita rate *death_rate*.
    """
    birth_rate = _check_rate("birth_rate", birth_rate)
    death_rate = _check_rate("death_rate", death_rate)
    x = Species(species_name)
    network = ReactionNetwork(species=[x], name="birth-death")
    if birth_rate > 0:
        network.add_reaction(
            Reaction({x: 1}, {x: 2}, rate=birth_rate, label=f"birth:{x.name}")
        )
    if death_rate > 0:
        network.add_reaction(
            Reaction({x: 1}, {}, rate=death_rate, label=f"death:{x.name}")
        )
    return network


def build_pure_birth_network(*, birth_rate: float, species_name: str = "X") -> ReactionNetwork:
    """Build a single-species Yule (pure-birth) network, used by Cho et al."""
    return build_birth_death_network(
        birth_rate=birth_rate, death_rate=0.0, species_name=species_name
    )


def build_single_species_logistic_network(
    *,
    birth_rate: float,
    death_rate: float,
    intra_rate: float,
    self_destructive: bool = True,
    species_name: str = "X",
) -> ReactionNetwork:
    """Build a single-species logistic network with intraspecific competition.

    Used to study the marginal dynamics of one species when ``α = 0`` (paper,
    Section 8.2): births at per-capita rate *birth_rate*, deaths at per-capita
    rate *death_rate*, and intraspecific interference at rate *intra_rate*
    which removes two individuals (self-destructive) or one individual
    (non-self-destructive) per event.
    """
    birth_rate = _check_rate("birth_rate", birth_rate)
    death_rate = _check_rate("death_rate", death_rate)
    intra_rate = _check_rate("intra_rate", intra_rate)
    x = Species(species_name)
    network = ReactionNetwork(species=[x], name="logistic")
    if birth_rate > 0:
        network.add_reaction(
            Reaction({x: 1}, {x: 2}, rate=birth_rate, label=f"birth:{x.name}")
        )
    if death_rate > 0:
        network.add_reaction(
            Reaction({x: 1}, {}, rate=death_rate, label=f"death:{x.name}")
        )
    if intra_rate > 0:
        products = {} if self_destructive else {x: 1}
        network.add_reaction(
            Reaction({x: 2}, products, rate=intra_rate, label=f"intra:{x.name}")
        )
    return network
