"""Species definitions for chemical reaction networks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Species"]


@dataclass(frozen=True, order=True)
class Species:
    """A named chemical or biological species.

    Species are immutable and hashable so they can be used as dictionary keys
    in stoichiometry maps and configurations.  Two species are equal if and
    only if their names are equal; the ``metadata`` mapping is excluded from
    comparisons so that decorating a species with display information does not
    change identity.

    Parameters
    ----------
    name:
        Unique identifier within a network, e.g. ``"X0"`` or ``"X1"``.
    metadata:
        Optional free-form annotations (e.g. ``{"role": "majority input"}``).

    Examples
    --------
    >>> x0 = Species("X0")
    >>> x1 = Species("X1", metadata={"role": "minority input"})
    >>> x0 == Species("X0")
    True
    >>> x0 < x1
    True
    """

    name: str
    metadata: Mapping[str, Any] = field(
        default_factory=dict, compare=False, hash=False, repr=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("species name must be a non-empty string")
        if any(ch.isspace() for ch in self.name):
            raise ValueError(f"species name must not contain whitespace: {self.name!r}")

    def __str__(self) -> str:
        return self.name

    def with_metadata(self, **metadata: Any) -> "Species":
        """Return a copy of this species with additional metadata merged in."""
        merged = dict(self.metadata)
        merged.update(metadata)
        return Species(self.name, metadata=merged)
