"""The 3-state approximate majority protocol (Angluin, Aspnes, Eisenstat).

States are ``"A"`` (supports input 0), ``"B"`` (supports input 1) and ``"U"``
(undecided/blank).  The transitions implement the classic
"cancellation + recruitment" dynamics:

* ``A + B → A + U`` (the initiator converts the opposing responder to blank),
* ``B + A → B + U``,
* ``A + U → A + A`` (recruit a blank to the initiator's opinion),
* ``B + U → B + B``,

and all other pairs are no-ops.  Angluin et al. show that with an initial gap
``Ω(√n log n)`` the protocol converges to the initial majority opinion within
``O(n log n)`` interactions with high probability.  The paper points out that
the same cancellation idea underlies the competitive LV protocols — with the
crucial difference that in the microbial setting births and deaths are
interleaved with the cancellation, which is exactly what the LV analysis must
handle.
"""

from __future__ import annotations

from typing import Mapping

from repro.baselines.population import PopulationProtocol

__all__ = ["ApproximateMajorityProtocol"]


class ApproximateMajorityProtocol(PopulationProtocol):
    """Three-state approximate majority (Angluin et al. 2008).

    Examples
    --------
    >>> protocol = ApproximateMajorityProtocol()
    >>> result = protocol.run(70, 30, rng=0)
    >>> result.converged and result.output == 0
    True
    """

    states = ("A", "B", "U")

    def initial_state(self, input_bit: int) -> str:
        return "A" if input_bit == 0 else "B"

    def transition(self, initiator: str, responder: str) -> tuple[str, str]:
        if initiator == "A" and responder == "B":
            return "A", "U"
        if initiator == "B" and responder == "A":
            return "B", "U"
        if initiator == "A" and responder == "U":
            return "A", "A"
        if initiator == "B" and responder == "U":
            return "B", "B"
        return initiator, responder

    def output(self, state: str) -> int:
        # Blank agents currently lean towards whichever opinion recruited them
        # last; before any recruitment they output 0 by convention.  The
        # convergence test below never relies on blank outputs.
        return 1 if state == "B" else 0

    def has_converged(self, counts: Mapping[str, int]) -> bool:
        """Converged when only one opinion remains (blanks may persist briefly).

        The protocol stabilises once one of ``A``/``B`` has died out; remaining
        blanks are recruited by the survivor and cannot flip the outcome, so
        declaring convergence at that point matches the standard analysis and
        keeps runs short.
        """
        return counts.get("A", 0) == 0 or counts.get("B", 0) == 0
