"""The bounded-growth resource-consumer model of Andaur et al. (2021).

Andaur et al. studied majority consensus in a biological reaction-network
model with two key departures from mass-action Lotka–Volterra dynamics:

* growth is **bounded and non-mass-action** — the per-capita reproduction rate
  saturates because it is limited by a shared resource (nutrient) rather than
  scaling freely with the population, and
* competition is **non-self-destructive** interference (the aggressor
  survives), with no individual death reactions (δ = 0).

Their exact reaction system is tied to an explicit resource species; since the
quantitative statements the paper cites only depend on the two properties
above, we implement the closest synthetic equivalent that exercises the same
code paths: a two-species jump chain whose *birth propensity* for species ``i``
is the bounded, non-mass-action function

.. math::

    b_i(x_0, x_1) = β · x_i · \\max\\left(0, 1 - \\frac{x_0 + x_1}{K}\\right),

(i.e. logistic resource limitation with carrying capacity ``K``), whose death
propensity is zero, and whose interspecific competition is non-self-
destructive at total rate α (propensity ``α·x_0·x_1``, the victim belonging to
the responder's species with probability proportional to the per-direction
rates).  Because the birth propensity is bounded by ``β·K/4`` overall and is
*not* of mass-action form, the model is outside the CRN formalism — exactly
the situation Andaur et al. consider — yet it still satisfies the "nice
dominating chain" conditions the paper uses to extend its own result to this
model, which the test suite verifies empirically.

Documented substitution: the explicit resource species of the original model
is replaced by its mean-field effect on the growth rate.  This preserves the
two properties the analysis depends on (bounded non-mass-action growth, NSD
interference, δ = 0) while keeping the model two-dimensional.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError, SimulationError
from repro.lv.state import LVState
from repro.rng import SeedLike, as_generator, spawn_generators
from repro.analysis.statistics import BinomialEstimate, binomial_estimate

__all__ = ["AndaurResourceModel", "AndaurRunResult"]


@dataclass(frozen=True)
class AndaurRunResult:
    """Outcome of one trajectory of the bounded-growth model."""

    initial_state: LVState
    final_state: LVState
    total_events: int
    reached_consensus: bool
    majority_consensus: bool
    competition_events: int
    birth_events: int


@dataclass(frozen=True)
class AndaurEstimate:
    """Aggregated Monte-Carlo estimate for the bounded-growth model."""

    initial_state: tuple[int, int]
    num_runs: int
    success: BinomialEstimate
    mean_consensus_time: float

    @property
    def majority_probability(self) -> float:
        return self.success.estimate


class AndaurResourceModel:
    """Bounded-growth, non-self-destructive interference model (Andaur et al.).

    Parameters
    ----------
    beta:
        Maximum per-capita growth rate (realised rate shrinks as the total
        population approaches the carrying capacity).
    alpha:
        Total interspecific interference rate.
    carrying_capacity:
        Resource-imposed carrying capacity ``K``; the growth propensity
        vanishes when the total population reaches ``K``.

    Examples
    --------
    >>> model = AndaurResourceModel(beta=1.0, alpha=1.0, carrying_capacity=400)
    >>> result = model.run(LVState(60, 30), rng=0)
    >>> result.reached_consensus
    True
    """

    def __init__(self, *, beta: float, alpha: float, carrying_capacity: int):
        if beta < 0 or alpha <= 0:
            raise ModelError(
                f"beta must be non-negative and alpha positive; got beta={beta}, alpha={alpha}"
            )
        if carrying_capacity < 2:
            raise ModelError(
                f"carrying_capacity must be at least 2, got {carrying_capacity}"
            )
        self.beta = float(beta)
        self.alpha = float(alpha)
        self.carrying_capacity = int(carrying_capacity)

    # ------------------------------------------------------------------
    # Propensities
    # ------------------------------------------------------------------
    def birth_propensity(self, own_count: int, total: int) -> float:
        """Bounded, non-mass-action birth propensity of one species."""
        if own_count <= 0:
            return 0.0
        limitation = max(0.0, 1.0 - total / self.carrying_capacity)
        return self.beta * own_count * limitation

    def competition_propensity(self, x0: int, x1: int) -> float:
        """Interference-competition propensity (mass action, as in the original)."""
        return self.alpha * x0 * x1

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        initial_state: LVState | tuple[int, int],
        *,
        rng: SeedLike = None,
        max_events: int = 20_000_000,
    ) -> AndaurRunResult:
        """Run the jump chain until one species is extinct."""
        if isinstance(initial_state, tuple):
            initial_state = LVState(int(initial_state[0]), int(initial_state[1]))
        if initial_state.total > self.carrying_capacity:
            raise ModelError(
                "initial population exceeds the carrying capacity "
                f"({initial_state.total} > {self.carrying_capacity})"
            )
        generator = as_generator(rng)
        x0, x1 = initial_state.x0, initial_state.x1
        reference = initial_state.majority_species
        if reference is None:
            reference = 0

        events = 0
        births = 0
        competitions = 0
        while x0 > 0 and x1 > 0 and events < max_events:
            total = x0 + x1
            birth0 = self.birth_propensity(x0, total)
            birth1 = self.birth_propensity(x1, total)
            competition = self.competition_propensity(x0, x1)
            total_propensity = birth0 + birth1 + competition
            if total_propensity <= 0.0:
                raise SimulationError(
                    "the bounded-growth model reached a state with zero propensity "
                    f"before consensus: ({x0}, {x1})"
                )
            u = generator.random() * total_propensity
            if u < birth0:
                x0 += 1
                births += 1
            elif u < birth0 + birth1:
                x1 += 1
                births += 1
            else:
                # Non-self-destructive interference: the victim belongs to
                # either species with equal probability (neutral rates).
                competitions += 1
                if generator.random() < 0.5:
                    x1 -= 1
                else:
                    x0 -= 1
            events += 1

        final_state = LVState(x0, x1)
        reached = final_state.has_consensus
        winner = final_state.winner
        return AndaurRunResult(
            initial_state=initial_state,
            final_state=final_state,
            total_events=events,
            reached_consensus=reached,
            majority_consensus=reached and winner == reference,
            competition_events=competitions,
            birth_events=births,
        )

    def estimate(
        self,
        initial_state: LVState | tuple[int, int],
        *,
        num_runs: int = 200,
        rng: SeedLike = None,
        max_events: int = 20_000_000,
        confidence: float = 0.95,
    ) -> AndaurEstimate:
        """Monte-Carlo estimate of the majority-consensus probability."""
        if num_runs <= 0:
            raise ModelError(f"num_runs must be positive, got {num_runs}")
        if isinstance(initial_state, tuple):
            initial_state = LVState(int(initial_state[0]), int(initial_state[1]))
        generators = spawn_generators(rng, num_runs)
        successes = 0
        times = np.empty(num_runs)
        for i, generator in enumerate(generators):
            result = self.run(initial_state, rng=generator, max_events=max_events)
            successes += int(result.majority_consensus)
            times[i] = result.total_events
        return AndaurEstimate(
            initial_state=(initial_state.x0, initial_state.x1),
            num_runs=num_runs,
            success=binomial_estimate(successes, num_runs, confidence=confidence),
            mean_consensus_time=float(times.mean()),
        )
