"""The 4-state exact majority protocol (Draief–Vojnović, Mertzios et al.).

States are the two *strong* opinions ``"A"``/``"B"`` and the two *weak*
opinions ``"a"``/``"b"``.  Transitions (initiator, responder) — the protocol
is symmetric so only the unordered content matters:

* ``A + B → a + b`` (two strong opposite opinions cancel to weak),
* ``A + b → A + a`` (a strong opinion converts an opposing weak one),
* ``B + a → B + b``,

all other pairs are no-ops.  The protocol always converges to the correct
majority for any positive initial gap (exact majority), at the cost of
``Θ(n²)`` expected interactions in the worst case — the trade-off the paper
contrasts with approximate protocols and with the LV dynamics, where exactness
is unattainable because of demographic noise.
"""

from __future__ import annotations

from typing import Mapping

from repro.baselines.population import PopulationProtocol

__all__ = ["ExactMajorityProtocol"]


class ExactMajorityProtocol(PopulationProtocol):
    """Four-state exact majority (Draief and Vojnović 2012).

    Examples
    --------
    >>> protocol = ExactMajorityProtocol()
    >>> result = protocol.run(26, 24, rng=1)
    >>> result.converged and result.output == 0
    True
    """

    states = ("A", "B", "a", "b")

    def initial_state(self, input_bit: int) -> str:
        return "A" if input_bit == 0 else "B"

    def transition(self, initiator: str, responder: str) -> tuple[str, str]:
        pair = {initiator, responder}
        if pair == {"A", "B"}:
            return ("a", "b") if initiator == "A" else ("b", "a")
        if initiator == "A" and responder == "b":
            return "A", "a"
        if initiator == "b" and responder == "A":
            return "a", "A"
        if initiator == "B" and responder == "a":
            return "B", "b"
        if initiator == "a" and responder == "B":
            return "b", "B"
        return initiator, responder

    def output(self, state: str) -> int:
        return 0 if state in ("A", "a") else 1

    def has_converged(self, counts: Mapping[str, int]) -> bool:
        """Converged when every remaining agent outputs the same bit.

        With a non-zero initial gap the strong opinions of the minority are
        eventually wiped out and every weak agent is converted, so this test
        terminates with probability 1.
        """
        outputs = {self.output(state) for state, count in counts.items() if count > 0}
        return len(outputs) == 1
