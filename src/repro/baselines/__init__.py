"""Baseline majority-consensus protocols and models from prior work.

The paper positions its Lotka–Volterra results against several baselines
(Sections 1.1, 2.2 and Table 1).  This subpackage implements them so that the
benchmark harness can compare thresholds and convergence behaviour directly:

* :mod:`~repro.baselines.population` — a scheduler for population protocols
  (uniformly random pairwise interactions, fixed population size),
* :mod:`~repro.baselines.approximate_majority` — the 3-state approximate
  majority protocol of Angluin, Aspnes and Eisenstat (threshold
  ``Ω(√n log n)``, ``O(n log n)`` interactions),
* :mod:`~repro.baselines.exact_majority` — the 4-state exact-majority protocol
  of Draief–Vojnović / Mertzios et al. (always correct, ``O(n²)`` expected
  interactions),
* :mod:`~repro.baselines.cho_growth` — the δ = 0, self-destructive growth
  model analysed by Cho et al. (Table 1, row 4),
* :mod:`~repro.baselines.andaur_resource` — the bounded, non-mass-action
  resource-consumer model of Andaur et al. with non-self-destructive
  interference competition.
"""

from repro.baselines.population import PopulationProtocol, ProtocolRunResult
from repro.baselines.approximate_majority import ApproximateMajorityProtocol
from repro.baselines.exact_majority import ExactMajorityProtocol
from repro.baselines.cho_growth import ChoGrowthModel
from repro.baselines.andaur_resource import AndaurResourceModel, AndaurRunResult

__all__ = [
    "PopulationProtocol",
    "ProtocolRunResult",
    "ApproximateMajorityProtocol",
    "ExactMajorityProtocol",
    "ChoGrowthModel",
    "AndaurResourceModel",
    "AndaurRunResult",
]
