"""Population-protocol scheduler (stochastic pairwise interactions).

The population protocol model (Angluin et al., Section 2.2 of the paper) keeps
the population size fixed: in each step a uniformly random *ordered* pair of
distinct agents (initiator, responder) is selected and both update their state
according to a deterministic transition function.  The model captures
interaction-pattern randomness but none of the demographic noise the paper
studies, which is exactly why it serves as a baseline.

Protocols are described by subclassing :class:`PopulationProtocol` and
implementing the transition function plus an output map; the scheduler tracks
only the *counts* of each state (the dynamics depend on nothing else), so runs
with millions of agents are cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidConfigurationError, SimulationError
from repro.rng import SeedLike, as_generator

__all__ = ["PopulationProtocol", "ProtocolRunResult"]

State = Hashable


@dataclass(frozen=True)
class ProtocolRunResult:
    """Outcome of one population-protocol execution.

    Attributes
    ----------
    final_counts:
        Mapping from protocol state to agent count at termination.
    interactions:
        Number of pairwise interactions executed.
    converged:
        Whether the run terminated because the protocol reported convergence
        (as opposed to exhausting the interaction budget).
    output:
        The common output bit if all agents agree on an output, else ``None``.
    majority_consensus:
        Whether the common output equals the initial majority input bit.
    """

    final_counts: dict[State, int]
    interactions: int
    converged: bool
    output: int | None
    majority_consensus: bool


class PopulationProtocol:
    """Base class for population protocols under the random scheduler.

    Subclasses define

    * :attr:`states` — the finite state set,
    * :meth:`initial_state` — input bit (0/1) → initial agent state,
    * :meth:`transition` — (initiator, responder) → (initiator', responder'),
    * :meth:`output` — state → output bit, and optionally
    * :meth:`has_converged` — counts → bool for early termination (the default
      declares convergence when all agents output the same bit and no pending
      "undecided" work remains, which subclasses refine).
    """

    #: Finite list of states; subclasses must override.
    states: Sequence[State] = ()

    # ------------------------------------------------------------------
    # Protocol definition hooks
    # ------------------------------------------------------------------
    def initial_state(self, input_bit: int) -> State:
        raise NotImplementedError

    def transition(self, initiator: State, responder: State) -> tuple[State, State]:
        raise NotImplementedError

    def output(self, state: State) -> int:
        raise NotImplementedError

    def has_converged(self, counts: Mapping[State, int]) -> bool:
        """Default convergence test: every present state outputs the same bit."""
        outputs = {self.output(state) for state, count in counts.items() if count > 0}
        return len(outputs) == 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def initial_counts(self, majority_agents: int, minority_agents: int) -> dict[State, int]:
        """Counts after assigning inputs (majority species gets input bit 0)."""
        if majority_agents <= 0 or minority_agents < 0:
            raise InvalidConfigurationError(
                "majority_agents must be positive and minority_agents non-negative; "
                f"got {majority_agents}, {minority_agents}"
            )
        counts = {state: 0 for state in self.states}
        majority_state = self.initial_state(0)
        minority_state = self.initial_state(1)
        if majority_state not in counts or minority_state not in counts:
            raise SimulationError("initial_state returned a state outside `states`")
        counts[majority_state] += majority_agents
        counts[minority_state] += minority_agents
        return counts

    def run(
        self,
        majority_agents: int,
        minority_agents: int,
        *,
        rng: SeedLike = None,
        max_interactions: int | None = None,
    ) -> ProtocolRunResult:
        """Run the protocol from the given input split until convergence.

        Parameters
        ----------
        majority_agents, minority_agents:
            Number of agents starting with the majority (bit 0) and minority
            (bit 1) inputs.
        max_interactions:
            Interaction budget; defaults to ``50 · n²`` which comfortably
            covers both the ``O(n log n)`` approximate-majority and the
            ``O(n²)`` exact-majority regimes for the sizes used in tests.
        """
        generator = as_generator(rng)
        counts = self.initial_counts(majority_agents, minority_agents)
        population = majority_agents + minority_agents
        if population < 2:
            raise InvalidConfigurationError("population protocols need at least two agents")
        if max_interactions is None:
            max_interactions = 50 * population * population

        state_list = list(self.states)
        state_index = {state: i for i, state in enumerate(state_list)}
        vector = np.array([counts.get(state, 0) for state in state_list], dtype=np.int64)

        interactions = 0
        converged = self.has_converged(_to_mapping(state_list, vector))
        while not converged and interactions < max_interactions:
            initiator_index = _sample_state(vector, population, generator)
            vector[initiator_index] -= 1
            responder_index = _sample_state(vector, population - 1, generator)
            vector[initiator_index] += 1

            initiator = state_list[initiator_index]
            responder = state_list[responder_index]
            new_initiator, new_responder = self.transition(initiator, responder)
            if new_initiator not in state_index or new_responder not in state_index:
                raise SimulationError(
                    f"transition({initiator!r}, {responder!r}) returned a state outside `states`"
                )
            vector[initiator_index] -= 1
            vector[responder_index] -= 1
            vector[state_index[new_initiator]] += 1
            vector[state_index[new_responder]] += 1
            interactions += 1
            if interactions % population == 0 or interactions < 32:
                converged = self.has_converged(_to_mapping(state_list, vector))

        final_counts = _to_mapping(state_list, vector)
        converged = self.has_converged(final_counts)
        output = self._common_output(final_counts) if converged else None
        return ProtocolRunResult(
            final_counts={state: int(count) for state, count in final_counts.items()},
            interactions=interactions,
            converged=converged,
            output=output,
            majority_consensus=converged and output == 0,
        )

    # ------------------------------------------------------------------
    def _common_output(self, counts: Mapping[State, int]) -> int | None:
        outputs = {self.output(state) for state, count in counts.items() if count > 0}
        if len(outputs) == 1:
            return outputs.pop()
        return None


def _to_mapping(state_list: Sequence[State], vector: np.ndarray) -> dict[State, int]:
    return {state: int(vector[i]) for i, state in enumerate(state_list)}


def _sample_state(vector: np.ndarray, total: int, rng: np.random.Generator) -> int:
    """Sample an agent uniformly and return the index of its state."""
    if total <= 0:
        raise SimulationError("cannot sample an agent from an empty population")
    threshold = rng.integers(0, total)
    cumulative = 0
    for index, count in enumerate(vector):
        cumulative += count
        if threshold < cumulative:
            return index
    raise SimulationError("state counts are inconsistent with the population size")
