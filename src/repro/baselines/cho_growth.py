"""The δ = 0 growth model of Cho et al. (Distributed Computing 2021).

Cho et al. analysed majority consensus in a two-species chemical reaction
network with *continual population growth*: every individual reproduces at
per-capita rate β, there are no individual deaths, and the two species engage
in self-destructive interspecific interference competition at rate α,

.. math::

    X_i \\xrightarrow{β} 2 X_i, \\qquad X_i + X_{1-i} \\xrightarrow{α_i} ∅.

This is exactly the special case ``δ = 0``, ``γ = 0`` of the paper's
self-destructive Lotka–Volterra model (Table 1, row 4).  Cho et al. proved
that an initial gap of ``Ω(√n log n)`` suffices for majority consensus with
high probability; the paper improves this exponentially to ``O(log² n)`` (and
the improvement applies to this very model, since the new analysis allows
``δ = 0``).  The class below wraps the LV machinery with the δ = 0 restriction
and carries both threshold predictions so the benchmark can display the gap
between the old and new bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.consensus.estimator import ConsensusEstimate, MajorityConsensusEstimator
from repro.exceptions import ModelError
from repro.lv.params import LVParams
from repro.lv.state import LVState
from repro.rng import SeedLike

__all__ = ["ChoGrowthModel"]


@dataclass(frozen=True)
class ChoGrowthModel:
    """Two-species growth model with self-destructive competition and no deaths.

    Parameters
    ----------
    beta:
        Per-capita birth rate (must be positive; the model has no deaths).
    alpha:
        Total interspecific interference rate ``α = α₀ + α₁``.

    Examples
    --------
    >>> model = ChoGrowthModel(beta=1.0, alpha=1.0)
    >>> estimate = model.estimate(LVState(40, 20), num_runs=50, rng=2)
    >>> estimate.majority_probability > 0.8
    True
    """

    beta: float
    alpha: float

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ModelError(f"beta must be positive in the Cho et al. model, got {self.beta}")
        if self.alpha <= 0:
            raise ModelError(f"alpha must be positive, got {self.alpha}")

    @property
    def params(self) -> LVParams:
        """The equivalent Lotka–Volterra parameterisation (δ = 0, γ = 0, SD)."""
        return LVParams.self_destructive(beta=self.beta, delta=0.0, alpha=self.alpha)

    # ------------------------------------------------------------------
    # Threshold predictions
    # ------------------------------------------------------------------
    @staticmethod
    def original_threshold_shape(population_size: int) -> float:
        """The ``√(n log n)`` gap shape proven sufficient by Cho et al."""
        if population_size < 2:
            raise ModelError(f"population_size must be at least 2, got {population_size}")
        return math.sqrt(population_size * math.log(population_size))

    @staticmethod
    def improved_threshold_shape(population_size: int) -> float:
        """The ``log² n`` gap shape proven sufficient by the paper (Theorem 14)."""
        if population_size < 2:
            raise ModelError(f"population_size must be at least 2, got {population_size}")
        return math.log(population_size) ** 2

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def estimate(
        self,
        initial_state: LVState | tuple[int, int],
        *,
        num_runs: int = 200,
        rng: SeedLike = None,
        max_events: int = 20_000_000,
    ) -> ConsensusEstimate:
        """Monte-Carlo estimate of the majority-consensus probability."""
        estimator = MajorityConsensusEstimator(self.params, max_events=max_events)
        return estimator.estimate(initial_state, num_runs, rng=rng)
