"""Journal union: merge shard cache directories into one store.

Chunk keys (:func:`repro.store.keys.chunk_key`) contain everything that
determines a chunk's bits and *nothing* about how execution was arranged —
no ``jobs``, no ``sweep_batch``, no packing, no engine.  Two stores that
simulated overlapping parts of one grid therefore journaled bitwise-equal
payloads under equal keys, and merging K shard journals is a pure set
union.  :func:`merge_cache` performs that union with the safety rails a
distributed run needs:

* **checksum verification** — only intact source records are merged
  (per-record SHA-256, same scan as :func:`repro.store.journal
  .verify_journal`); complete-but-corrupt lines are counted and skipped,
  and a torn source tail simply ends that source's scan, so a shard
  journal whose writer was killed mid-append merges cleanly;
* **conflict detection** — a key present in the destination with a
  *different* payload is a hard error naming the key: under the
  determinism contract it can only mean corruption that forged a valid
  checksum, or keys minted from incompatible code — never something to
  silently last-write-win;
* **idempotent re-merge** — re-running a merge (or merging overlapping
  shards) skips records whose payload already matches, so a crashed merge
  is safely re-run from the top.

Run-tier entries (``runs/<key>.json``) are unioned with the same rule:
copied when absent, skipped when byte-identical, hard error otherwise.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.exceptions import StoreError
from repro.store.journal import _classify_line
from repro.store.store import ExperimentStore

__all__ = ["MergeReport", "merge_cache"]

#: Metadata fields that are structural to a journal record rather than
#: caller-provided provenance; everything else is forwarded on merge.
_STRUCTURAL_FIELDS = frozenset({"key", "payload", "checksum"})


@dataclass(frozen=True)
class MergeReport:
    """Accounting of one :func:`merge_cache` call."""

    destination: Path
    sources: tuple[Path, ...]
    chunks_added: int
    chunks_skipped: int
    corrupt_skipped: int
    runs_copied: int
    runs_skipped: int

    def summary(self) -> str:
        text = (
            f"merged {len(self.sources)} source(s) into {self.destination}: "
            f"{self.chunks_added} chunk(s) added, "
            f"{self.chunks_skipped} identical chunk(s) skipped"
        )
        if self.corrupt_skipped:
            text += f", {self.corrupt_skipped} corrupt record(s) skipped"
        if self.runs_copied or self.runs_skipped:
            text += (
                f", {self.runs_copied} run entr(y/ies) copied, "
                f"{self.runs_skipped} skipped"
            )
        return text


def _canonical_payload(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _source_journal_path(source: Path) -> Path:
    return source / "journal.jsonl" if source.is_dir() else source


def merge_cache(
    destination: str | Path,
    sources: Sequence[str | Path],
    *,
    store: ExperimentStore | None = None,
) -> MergeReport:
    """Union the journals (and run entries) of *sources* into *destination*.

    *destination* is a cache directory (created if absent); each source is
    a cache directory or a bare journal file.  Sources are read without
    locks — the scan is the same read-only pass as ``repro verify-cache``
    — while the destination is opened as a live :class:`ExperimentStore`,
    taking its writer lock so a merge never races a run writing the same
    store.  Pass an already-open *store* to merge into it in-process.

    Raises :class:`~repro.exceptions.StoreError` on the first same-key /
    different-payload conflict, naming the key; everything merged before
    the conflict is durably journaled, and re-running after resolving the
    conflict is safe (idempotent skip of what already landed).
    """
    destination = Path(destination)
    source_paths = tuple(Path(source) for source in sources)
    owned = store is None
    if store is None:
        store = ExperimentStore(destination)
    try:
        journal = store._journal
        chunks_added = chunks_skipped = corrupt_skipped = 0
        runs_copied = runs_skipped = 0
        for source in source_paths:
            journal_path = _source_journal_path(source)
            if not journal_path.exists() and not source.exists():
                raise StoreError(f"merge source {source} does not exist")
            with journal_path.open("rb") if journal_path.exists() else _empty() as handle:
                for raw in handle:
                    if not raw.endswith(b"\n"):
                        break  # torn source tail: already-handled crash trace
                    record, reason = _classify_line(raw)
                    if reason is not None:
                        corrupt_skipped += 1
                        continue
                    key = str(record["key"])
                    payload = record["payload"]
                    existing = journal.get(key) if key in journal else None
                    if existing is not None:
                        if _canonical_payload(existing["payload"]) == _canonical_payload(
                            payload
                        ):
                            chunks_skipped += 1
                            continue
                        raise StoreError(
                            f"merge conflict for chunk {key}: {journal_path} carries "
                            f"a different payload than {store.cache_dir} — same key "
                            "must mean same bits; one side is corrupt or was built "
                            "by incompatible code"
                        )
                    metadata = {
                        name: value
                        for name, value in record.items()
                        if name not in _STRUCTURAL_FIELDS
                    }
                    journal.append(key, payload, **metadata)
                    store.stats.chunk_writes += 1
                    chunks_added += 1
            if source.is_dir():
                copied, skipped = _merge_runs(store, source)
                runs_copied += copied
                runs_skipped += skipped
    finally:
        if owned:
            store.close()
    return MergeReport(
        destination=destination,
        sources=source_paths,
        chunks_added=chunks_added,
        chunks_skipped=chunks_skipped,
        corrupt_skipped=corrupt_skipped,
        runs_copied=runs_copied,
        runs_skipped=runs_skipped,
    )


def _merge_runs(store: ExperimentStore, source: Path) -> tuple[int, int]:
    """Union one source's ``runs/`` tier into *store* (copy / skip / error)."""
    runs_dir = source / "runs"
    if not runs_dir.is_dir():
        return 0, 0
    copied = skipped = 0
    destination_dir = store.cache_dir / "runs"
    for entry in sorted(runs_dir.glob("*.json")):
        target = destination_dir / entry.name
        if target.exists():
            if target.read_bytes() == entry.read_bytes():
                skipped += 1
                continue
            raise StoreError(
                f"merge conflict for run entry {entry.stem}: {entry} differs "
                f"from {target} — same run key must mean same result"
            )
        destination_dir.mkdir(parents=True, exist_ok=True)
        temporary = target.with_suffix(".json.tmp")
        shutil.copyfile(entry, temporary)
        temporary.replace(target)
        store.stats.run_writes += 1
        copied += 1
    return copied, skipped


class _empty:
    """Context manager yielding no lines (missing source journal file)."""

    def __enter__(self):
        return iter(())

    def __exit__(self, *exc_info: object) -> None:
        return None
