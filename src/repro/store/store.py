"""The persistent, content-addressed experiment result store.

:class:`ExperimentStore` is the durability and caching layer of the
experiment harness.  It owns two tiers under one cache directory:

* **chunk tier** — ``journal.jsonl``, the append-only chunk journal
  (:mod:`repro.store.journal`).  Schedulers journal every executed
  simulation chunk under its content-address (:func:`repro.store.keys
  .chunk_key`) the moment it completes, and consult the journal before
  executing a chunk.  Because chunk keys contain everything that determines
  the chunk's bits — and nothing that doesn't — a killed sweep resumes
  bitwise-identically on the next run, with the already-computed prefix
  served from disk, even under different ``jobs`` / ``sweep_batch``
  settings.
* **run tier** — ``runs/<key>.json``, completed
  :class:`~repro.experiments.config.ExperimentResult` payloads keyed by
  ``(experiment id, canonical config hash, seed root, schema version)``
  (:func:`repro.store.keys.run_key`).  ``--resume`` serves finished
  experiments straight from this tier without touching the simulators.

Run-tier writes are atomic (temp file + ``os.replace``), chunk-tier writes
are journaled with per-record flush+fsync, and all invalidation is key-based
(see :mod:`repro.store.keys`): nothing is mutated in place, incompatible
entries are simply never addressed again.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.exceptions import ExperimentError, StoreError
from repro.lv.ensemble import LVEnsembleResult
from repro.store.journal import ChunkJournal
from repro.store.serialize import ensemble_from_payload, ensemble_to_payload

if TYPE_CHECKING:  # deferred at runtime: repro.experiments imports this package
    from repro.experiments.config import ExperimentResult

__all__ = ["CacheStats", "ExperimentStore"]

#: Cache directories with a live store in *this* process.  POSIX record
#: locks (`fcntl.lockf`) never conflict within one process, so in-process
#: exclusivity needs its own registry.
_LIVE_DIRS: set[Path] = set()


@dataclass
class CacheStats:
    """Hit/miss accounting of one store session (for reports and tests)."""

    chunk_hits: int = 0
    chunk_misses: int = 0
    chunk_writes: int = 0
    run_hits: int = 0
    run_writes: int = 0
    #: Simulated events served from the journal instead of recomputed.
    events_replayed: int = 0
    #: Failed journal appends recovered by truncate-and-retry.
    journal_repairs: int = 0
    #: Corrupt journal records detected and moved to the quarantine sidecar.
    chunks_quarantined: int = 0

    def summary(self) -> str:
        text = (
            f"{self.chunk_hits} chunk hit(s), {self.chunk_misses} miss(es), "
            f"{self.chunk_writes} journaled, {self.run_hits} run(s) from cache, "
            f"{self.events_replayed} event(s) replayed"
        )
        if self.journal_repairs:
            text += f", {self.journal_repairs} journal repair(s)"
        if self.chunks_quarantined:
            text += f", {self.chunks_quarantined} chunk(s) quarantined"
        return text


@dataclass
class ExperimentStore:
    """Content-addressed chunk + run cache rooted at *cache_dir*.

    Examples
    --------
    >>> import tempfile
    >>> from repro.experiments.scheduler import SweepScheduler
    >>> from repro.experiments.sweep import SweepTask
    >>> from repro.lv.params import LVParams
    >>> from repro.lv.state import LVState
    >>> params = LVParams.self_destructive(beta=1.0, delta=1.0, alpha=1.0)
    >>> with tempfile.TemporaryDirectory() as root:
    ...     store = ExperimentStore(root)
    ...     scheduler = SweepScheduler(store=store)
    ...     first = scheduler.run_sweep([SweepTask(params, LVState(20, 12), 40, seed=7)])
    ...     again = scheduler.run_sweep([SweepTask(params, LVState(20, 12), 40, seed=7)])
    ...     (store.stats.chunk_writes, store.stats.chunk_hits)
    (1, 1)
    """

    cache_dir: Path
    stats: CacheStats = field(default_factory=CacheStats, compare=False)
    #: Extra cache directories (or journal files) consulted *read-only* on a
    #: chunk miss — a multi-source view over shard caches that have not been
    #: merged yet.  Source journals are never locked, appended, healed, or
    #: truncated; new chunks always land in this store's own journal, and
    #: ``repro merge-cache`` is the materialisation path.
    read_sources: tuple[Path, ...] = ()

    def __post_init__(self) -> None:
        self.cache_dir = Path(self.cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.read_sources = tuple(Path(source) for source in self.read_sources)
        self._lock_handle = None
        self._locked_dir: Path | None = None
        self._acquire_writer_lock()
        self._journal = ChunkJournal(self.cache_dir / "journal.jsonl")
        self._source_journals: list[ChunkJournal] | None = None
        self._runs_dir = self.cache_dir / "runs"

    def _acquire_writer_lock(self) -> None:
        """Enforce one live store per cache directory.

        Two writers appending to one journal would truncate or interleave
        each other's records; failing fast at open — before any simulation
        work — is the safe answer.  Cross-process exclusion uses an
        advisory ``fcntl.lockf`` record lock (process-owned, so forked
        worker-pool children never inherit it and a warm pool cannot pin
        the lock after :meth:`close`); in-process exclusion uses the
        :data:`_LIVE_DIRS` registry because record locks never conflict
        within one process.  On platforms without ``fcntl`` only the
        in-process guard applies.
        """
        self._locked_dir = self.cache_dir.resolve()
        if self._locked_dir in _LIVE_DIRS:
            self._locked_dir = None
            raise StoreError(
                f"cache directory {self.cache_dir} is already in use by a "
                "live ExperimentStore in this process; close it first or "
                "use a separate cache directory"
            )
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX platforms
            fcntl = None
        if fcntl is not None:
            handle = (self.cache_dir / "lock").open("a")
            try:
                fcntl.lockf(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                self._locked_dir = None
                raise StoreError(
                    f"cache directory {self.cache_dir} is already in use by "
                    "another process; concurrent writers would corrupt the "
                    "chunk journal — wait for the other run or use a "
                    "separate --cache-dir"
                ) from None
            self._lock_handle = handle
        _LIVE_DIRS.add(self._locked_dir)

    # ------------------------------------------------------------------
    # Chunk tier
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self._journal.path

    def _note_journal_health(self) -> None:
        self.stats.chunks_quarantined = self._journal.healed_count

    def _iter_source_journals(self) -> list[ChunkJournal]:
        """Lazily opened read-only journals of :attr:`read_sources`.

        A :class:`ChunkJournal` that is only ever read takes no lock and
        never mutates its file (healing and truncation happen exclusively
        on the append path), so consulting live shard caches is safe.
        """
        if self._source_journals is None:
            self._source_journals = []
            for source in self.read_sources:
                path = source / "journal.jsonl" if source.is_dir() else source
                self._source_journals.append(ChunkJournal(path))
        return self._source_journals

    def _get_source_chunk(self, key: str) -> dict | None:
        for journal in self._iter_source_journals():
            try:
                record = journal.get(key)
            except StoreError:
                continue  # a corrupt source record is a miss, never fatal
            if record is not None:
                return record
        return None

    def get_chunk(self, key: str) -> LVEnsembleResult | None:
        """The journaled ensemble chunk for *key*, or ``None`` on a miss.

        Falls back to :attr:`read_sources` (read-only) when the store's own
        journal misses, so an unmerged union of shard caches can serve a
        replay without rewriting anything.
        """
        record = self._journal.get(key)
        self._note_journal_health()
        if record is None and self.read_sources:
            record = self._get_source_chunk(key)
        if record is None:
            self.stats.chunk_misses += 1
            return None
        result = ensemble_from_payload(record["payload"])
        self.stats.chunk_hits += 1
        self.stats.events_replayed += int(result.total_events.sum())
        return result

    def put_chunk(self, key: str, result: LVEnsembleResult, *, label: str = "") -> None:
        """Journal one completed chunk (durable before this returns).

        A failed append (torn write, full disk blip) is retried once after
        :meth:`ChunkJournal.repair` re-indexes the file and truncates any
        half-written bytes — simulation results are too expensive to drop
        over one bad write, and a repeat failure still propagates.
        """
        payload = ensemble_to_payload(result)
        try:
            self._journal.append(
                key, payload, label=label, num_replicates=result.num_replicates
            )
        except StoreError:
            self._journal.repair()
            self.stats.journal_repairs += 1
            self._journal.append(
                key, payload, label=label, num_replicates=result.num_replicates
            )
        self.stats.chunk_writes += 1
        self._note_journal_health()

    def __contains__(self, key: str) -> bool:
        if key in self._journal:
            return True
        return any(key in journal for journal in self._iter_source_journals())

    def __len__(self) -> int:
        return len(self._journal)

    # ------------------------------------------------------------------
    # Run tier
    # ------------------------------------------------------------------
    def _run_path(self, key: str) -> Path:
        return self._runs_dir / f"{key}.json"

    def get_run(self, key: str) -> "ExperimentResult | None":
        """A completed experiment result, or ``None`` when absent/corrupt."""
        from repro.experiments.config import ExperimentResult

        path = self._run_path(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict):
                raise StoreError(f"unexpected run-entry format in {path}")
            result = ExperimentResult.from_dict(payload)
        except (json.JSONDecodeError, StoreError, ExperimentError, TypeError, KeyError):
            # A torn or incompatible run entry is a cache miss, not a crash;
            # the run recomputes and overwrites it atomically.
            return None
        self.stats.run_hits += 1
        return result

    def put_run(self, key: str, result: "ExperimentResult") -> None:
        """Atomically persist one completed experiment result."""
        self._runs_dir.mkdir(parents=True, exist_ok=True)
        path = self._run_path(key)
        temporary = path.with_suffix(".json.tmp")
        # No sort_keys: row dictionaries carry the table's column order, which
        # must survive the round trip so resumed runs render identically.
        temporary.write_text(
            json.dumps(result.to_dict(), indent=2)  # repro: noqa-RC203: rows keep column order
        )
        os.replace(temporary, path)
        self.stats.run_writes += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the journal and release the cache directory's writer lock."""
        self._journal.close()
        if self._source_journals is not None:
            for journal in self._source_journals:
                journal.close()
            self._source_journals = None
        if self._lock_handle is not None:
            self._lock_handle.close()  # closing the fd releases the record lock
            self._lock_handle = None
        if self._locked_dir is not None:
            _LIVE_DIRS.discard(self._locked_dir)
            self._locked_dir = None

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def describe(self) -> str:
        """One-line summary for CLI output."""
        text = f"result store at {self.cache_dir} ({len(self._journal)} journaled chunk(s))"
        if self.read_sources:
            text += f" + {len(self.read_sources)} read-only source(s)"
        return text
