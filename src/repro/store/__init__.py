"""Persistent, content-addressed experiment result store with resume support.

``repro.store`` is the durability/caching layer of the experiment harness
(the ROADMAP's "caching" pillar).  It converts the experiment surface from
recompute-always to cache-first:

* every executed simulation chunk is journaled to JSONL under a
  content-address the moment it completes (:mod:`repro.store.journal`,
  :mod:`repro.store.keys`),
* schedulers configured with a store consult the journal before simulating,
  so an interrupted sweep — killed mid-wave by SIGTERM, Ctrl-C, or a crash —
  resumes **bitwise-identically** on the next invocation, replaying the
  finished prefix from disk (:mod:`repro.store.store`), and
* completed experiment runs are cached whole under ``(experiment id,
  canonical config hash, seed root, schema version)`` so ``--resume`` skips
  finished experiments entirely.

The CLI surface is ``--cache-dir`` / ``--resume`` / ``--no-cache`` on
``python -m repro run`` (and ``estimate``); see DESIGN.md for the keying
and invalidation rules.
"""

from repro.store.journal import (
    ChunkJournal,
    JournalIssue,
    JournalVerifyReport,
    iter_intact_records,
    quarantine_path,
    verify_journal,
)
from repro.store.merge import MergeReport, merge_cache
from repro.store.keys import (
    RESULT_SCHEMA_VERSION,
    chunk_key,
    config_hash,
    run_key,
    scheduler_fingerprint,
)
from repro.store.serialize import ensemble_from_payload, ensemble_to_payload
from repro.store.store import CacheStats, ExperimentStore

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "CacheStats",
    "ChunkJournal",
    "ExperimentStore",
    "JournalIssue",
    "JournalVerifyReport",
    "MergeReport",
    "chunk_key",
    "config_hash",
    "ensemble_from_payload",
    "ensemble_to_payload",
    "iter_intact_records",
    "merge_cache",
    "quarantine_path",
    "run_key",
    "scheduler_fingerprint",
    "verify_journal",
]
