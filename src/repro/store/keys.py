"""Canonical hashing: the keying/invalidation contract of the result store.

Every store entry is addressed by a SHA-256 digest of a *canonical
configuration payload* — a plain-JSON dictionary with sorted keys and no
incidental formatting — so two runs that would produce bitwise-identical
results always produce identical keys, and any input that can change a
result changes the key.

Two granularities share the scheme:

* **chunk keys** (:func:`chunk_key`) address one executed simulation chunk —
  a ``(params, initial counts, replicate count, seed, event budget, resolved
  backend, collect mode)`` unit, the same unit the sweep engine's
  determinism contract covers (a member's result is bitwise-identical to
  running it alone, independent of ``jobs`` / ``sweep_batch`` packing /
  ``compaction_fraction`` / the resolved ``engine`` — the numba kernel is
  bit-for-bit the numpy path — all of which are therefore deliberately
  *excluded* from the key), and
* **run keys** (:func:`run_key`) address one completed experiment run —
  ``(experiment id, canonical config hash, seed root, result-schema
  version)`` per the store's layered-keying contract, where the config hash
  (:func:`config_hash`) covers the scale plus every scheduler knob that can
  change results (:func:`scheduler_fingerprint`).

Invalidation is purely key-based: nothing is ever rewritten in place.  A
schema bump (:data:`RESULT_SCHEMA_VERSION`), a changed rate, seed, budget,
backend, or precision target yields a different key, so stale entries are
simply never hit again.  Conservative keying (e.g. ``tau_epsilon`` is kept
in exact-backend run keys) can cause spurious misses, never false hits.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.lv.params import LVParams

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "canonical_json",
    "digest",
    "params_payload",
    "chunk_key",
    "config_hash",
    "run_key",
    "scheduler_fingerprint",
]

#: Version of the serialised result layout (:mod:`repro.store.serialize`).
#: Part of every key, so bumping it invalidates the whole store without any
#: deletion pass: old entries simply stop matching.
#: Version 2: scenario-engine generalisation — chunk keys fold in the
#: scenario fingerprint, payloads carry ``scenario``/``initial_counts``/
#: ``finals`` for generic-scenario ensembles, and ``counts`` may have more
#: than two species.
RESULT_SCHEMA_VERSION = 2


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of *payload*."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def params_payload(params: LVParams) -> dict[str, Any]:
    """Canonical JSON payload of an :class:`~repro.lv.params.LVParams`."""
    return {
        "beta": params.beta,
        "delta": params.delta,
        "alpha0": params.alpha0,
        "alpha1": params.alpha1,
        "gamma0": params.gamma0,
        "gamma1": params.gamma1,
        "mechanism": params.mechanism.value,
    }


def chunk_key(
    *,
    params: LVParams,
    counts: tuple[int, ...],
    num_replicates: int,
    seed: int,
    max_events: int,
    backend: str,
    tau_epsilon: float,
    collect: str = "full",
    scenario: str | None = None,
) -> str:
    """Content address of one simulation chunk.

    *backend* must already be resolved to the engine that will execute the
    chunk (``"exact"`` or ``"tau"`` — never ``"auto"``), because that is
    what determines the bit stream.  ``tau_epsilon`` only enters the key for
    tau chunks; the exact engine ignores it, and keying it would split
    identical results across keys.  The inner-loop ``engine`` selector
    (``"numpy"``/``"numba"``) is deliberately **not** keyed: the native
    kernel preserves the exact engine's per-replica RNG consumption order,
    so both implementations produce bitwise-identical chunks — keying the
    engine would only split one result across two addresses and forfeit
    cache hits when a journal written on a numba host is replayed on a
    numpy-only one (or vice versa).

    *scenario* names the registered scenario family the chunk runs under
    (``None`` means the two-species default).  The key folds in the
    **scenario fingerprint** — the content hash of the fully lowered
    reaction tables for ``(family, params)``
    (:func:`repro.scenario.registry.scenario_fingerprint`) — rather than
    just the family name, so any change to how a family lowers parameters
    into tables invalidates exactly that family's chunks.
    """
    from repro.scenario.registry import scenario_fingerprint
    from repro.scenario.spec import DEFAULT_SCENARIO

    payload: dict[str, Any] = {
        "schema": RESULT_SCHEMA_VERSION,
        "params": params_payload(params),
        "counts": [int(count) for count in counts],
        "num_replicates": int(num_replicates),
        "seed": int(seed),
        "max_events": int(max_events),
        "backend": backend,
        "collect": collect,
        "scenario": scenario_fingerprint(scenario or DEFAULT_SCENARIO, params),
    }
    if backend == "tau":
        payload["tau_epsilon"] = float(tau_epsilon)
    return digest(payload)


def scheduler_fingerprint(scheduler: Any) -> dict[str, Any]:
    """The scheduler knobs that can change experiment *results*.

    Includes ``batch_size`` (fixed-budget chunk decomposition derives
    per-batch seeds from it), ``wave_quantum`` (the adaptive chunk ladder),
    the backend selector, ``tau_epsilon``, and the precision target.
    Excludes ``jobs``, ``sweep_batch``, ``compaction_fraction``, and the
    inner-loop ``engine``: results are bitwise-independent of them by the
    sweep engine's contract, so runs executed with different parallelism —
    or with and without numba — still share cache entries.
    """
    precision = getattr(scheduler, "precision", None)
    return {
        "batch_size": scheduler.batch_size,
        "wave_quantum": getattr(scheduler, "wave_quantum", None),
        "backend": scheduler.backend,
        "tau_epsilon": scheduler.tau_epsilon,
        "precision": None
        if precision is None
        else {
            "ci_half_width": precision.ci_half_width,
            "relative_error": precision.relative_error,
            "confidence": precision.confidence,
            "min_replicates": precision.min_replicates,
            "max_replicates": precision.max_replicates,
        },
    }


def config_hash(scale: str, fingerprint: Mapping[str, Any]) -> str:
    """Canonical config hash of one experiment invocation."""
    return digest({"scale": scale, "scheduler": dict(fingerprint)})


def run_key(
    *,
    experiment_id: str,
    config: str,
    seed_root: int,
    schema_version: int = RESULT_SCHEMA_VERSION,
) -> str:
    """Store key of one completed experiment run.

    The layered keying contract: ``(experiment id, canonical config hash,
    seed root, result-schema version)``.
    """
    return digest(
        {
            "experiment": experiment_id,
            "config": config,
            "seed_root": int(seed_root),
            "schema": int(schema_version),
        }
    )
