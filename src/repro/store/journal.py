"""Append-only JSONL chunk journal: the store's durability layer.

Completed simulation chunks are journaled *as they finish*: one JSON line
per chunk, carrying the chunk's content-address key, a little provenance
metadata, the full serialised payload, and a per-record SHA-256 checksum.
The file is append-only and flushed after every record, so a run killed
mid-sweep (SIGTERM, Ctrl-C, OOM) loses at most the chunk it was simulating
— everything journaled before the kill replays from disk on the next run.

Crash tolerance is structural rather than transactional:

* a record becomes visible only once its trailing newline is on disk, so a
  reader never sees a half-record as valid;
* every record carries ``checksum`` — the SHA-256 hex digest of the record's
  canonical JSON minus the checksum field itself — so silent mid-file
  corruption (bit rot, partial overwrite, hand editing) is detected, not
  replayed;
* on open, the journal scans forward and indexes ``key -> (offset, length)``
  per intact line.  A corrupt line (unparseable, missing key, or checksum
  mismatch) is remembered for quarantine and the scan *continues*: intact
  records after the corruption stay indexed and are never thrown away;
* before the first append of a session, corrupt lines are quarantined to the
  ``journal.quarantine.jsonl`` sidecar and the journal is atomically
  rewritten with only intact lines (self-healing), and any truncated tail
  left by a kill is cut off so new records never concatenate onto a partial
  line.  A quarantined chunk simply stops being addressable, so the next
  run recomputes exactly that chunk — and, results being bitwise
  deterministic, re-journals the same bytes a fault-free run would have.

Replaying is lazy: the open-time scan keeps only offsets, and payloads are
re-parsed (and checksum-verified) on lookup, so a large journal costs one
sequential read to index and one seek per cache hit.

:func:`verify_journal` performs the same integrity scan read-only — it
never heals, truncates, or quarantines — for offline auditing
(``repro verify-cache``).
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import StoreError
from repro.store.keys import digest

__all__ = [
    "ChunkJournal",
    "JournalIssue",
    "JournalVerifyReport",
    "iter_intact_records",
    "verify_journal",
]

#: Suffix of the quarantine sidecar kept next to a journal file.
QUARANTINE_SUFFIX = ".quarantine.jsonl"


def quarantine_path(journal_path: str | Path) -> Path:
    """The quarantine sidecar path for *journal_path*."""
    journal_path = Path(journal_path)
    return journal_path.with_name(journal_path.stem + QUARANTINE_SUFFIX)


def record_checksum(record: dict[str, Any]) -> str:
    """SHA-256 hex digest of *record*'s canonical JSON, checksum field excluded."""
    body = {name: value for name, value in record.items() if name != "checksum"}
    return digest(body)


def _classify_line(raw: bytes) -> tuple[dict[str, Any] | None, str | None]:
    """Parse one complete journal line: ``(record, None)`` or ``(maybe, reason)``.

    On failure the first element is whatever partial information could be
    recovered (the parsed record when only the checksum failed, else
    ``None``) so quarantine entries can preserve the chunk key.
    """
    try:
        record = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        return None, f"unparseable JSON: {error}"
    if not isinstance(record, dict) or "key" not in record:
        return None, "not a journal record (missing key field)"
    if "checksum" in record and record["checksum"] != record_checksum(record):
        return record, "checksum mismatch"
    # Records written before checksums existed carry no checksum field and
    # are accepted as-is: the torn-tail rule still protects them.
    return record, None


@dataclass(frozen=True)
class JournalIssue:
    """One corrupt record found by an integrity scan."""

    offset: int
    length: int
    reason: str
    key: str | None


@dataclass(frozen=True)
class JournalVerifyReport:
    """Result of a read-only journal integrity scan (:func:`verify_journal`)."""

    path: Path
    intact_records: int
    issues: tuple[JournalIssue, ...]
    torn_tail_bytes: int
    quarantined_records: int

    @property
    def ok(self) -> bool:
        """No corrupt records.

        A torn tail or previously quarantined records do not fail the
        check: both are the already-handled traces of an interrupted or
        healed run, and the next writing session recovers/recomputes them
        automatically.
        """
        return not self.issues

    def summary(self) -> str:
        parts = [f"{self.intact_records} intact record(s)"]
        if self.issues:
            parts.append(f"{len(self.issues)} corrupt record(s)")
        if self.torn_tail_bytes:
            parts.append(f"torn tail of {self.torn_tail_bytes} byte(s)")
        if self.quarantined_records:
            parts.append(f"{self.quarantined_records} previously quarantined record(s)")
        return ", ".join(parts)


def _count_sidecar_records(path: Path) -> int:
    if not path.exists():
        return 0
    with path.open("rb") as handle:
        return sum(1 for raw in handle if raw.endswith(b"\n"))


def verify_journal(path: str | Path) -> JournalVerifyReport:
    """Read-only integrity scan of the journal at *path*.

    Safe to run against a journal another process is writing (it takes no
    locks and writes nothing); a concurrent append can at most show up as a
    torn tail.  A missing journal verifies as empty and ok.
    """
    path = Path(path)
    intact = 0
    issues: list[JournalIssue] = []
    torn_tail = 0
    if path.exists():
        with path.open("rb") as handle:
            offset = 0
            for raw in handle:
                if not raw.endswith(b"\n"):
                    torn_tail = len(raw)
                    break
                record, reason = _classify_line(raw)
                if reason is None:
                    intact += 1
                else:
                    key = record.get("key") if isinstance(record, dict) else None
                    issues.append(
                        JournalIssue(
                            offset=offset,
                            length=len(raw),
                            reason=reason,
                            key=None if key is None else str(key),
                        )
                    )
                offset += len(raw)
    return JournalVerifyReport(
        path=path,
        intact_records=intact,
        issues=tuple(issues),
        torn_tail_bytes=torn_tail,
        quarantined_records=_count_sidecar_records(quarantine_path(path)),
    )


def iter_intact_records(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield every intact record of the journal at *path*, in file order.

    The read-only sibling of :class:`ChunkJournal`'s open-time scan: takes
    no locks, writes nothing, skips complete-but-corrupt lines, and stops
    at a torn tail — so it is safe against a journal another process is
    appending to.  A missing journal yields nothing.  Used by consumers
    that want the raw records rather than an addressable index: journal
    union (:mod:`repro.store.merge`) and event-rate harvesting
    (:class:`repro.shard.planner.EventRateHistory`).
    """
    path = Path(path)
    if not path.exists():
        return
    with path.open("rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                return  # torn tail: nothing past it is framed
            record, reason = _classify_line(raw)
            if reason is None:
                yield record


class ChunkJournal:
    """Offset-indexed append-only JSONL file of completed chunk records."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._index: dict[str, tuple[int, int]] = {}
        #: End of the last complete (intact *or* corrupt) line: where the
        #: next append goes once corrupt lines are healed away.
        self._valid_end = 0
        #: Corrupt complete lines awaiting quarantine, in offset order.
        self._corrupt: list[JournalIssue] = []
        #: Times each key has been appended (on disk, in the quarantine
        #: sidecar, or attempted this session) — the attempt number handed
        #: to the fault-injection layer so injected journal faults never
        #: refire on the recovery append.
        self._appearances: dict[str, int] = {}
        #: Corrupt records quarantined by this instance (store metering).
        self.healed_count = 0
        self._appender: io.BufferedWriter | None = None
        self._scan()

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _scan(self) -> None:
        """Index every intact record; remember corrupt lines for quarantine.

        Unlike a torn tail — which ends the scan, because everything past a
        half-written line is unframed — a complete-but-corrupt line is
        recorded and *skipped*: the records after it are intact JSONL and
        keep their entries, so one flipped bit never costs the rest of the
        journal.
        """
        self._index.clear()
        self._corrupt = []
        self._valid_end = 0
        disk_appearances: dict[str, int] = {}
        if self.path.exists():
            with self.path.open("rb") as handle:
                offset = 0
                for raw in handle:
                    if not raw.endswith(b"\n"):
                        break  # truncated tail: a record killed mid-write
                    record, reason = _classify_line(raw)
                    if reason is None:
                        key = str(record["key"])
                        self._index[key] = (offset, len(raw))
                        disk_appearances[key] = disk_appearances.get(key, 0) + 1
                    else:
                        key = record.get("key") if isinstance(record, dict) else None
                        if key is not None:
                            key = str(key)
                            disk_appearances[key] = disk_appearances.get(key, 0) + 1
                        self._corrupt.append(
                            JournalIssue(
                                offset=offset, length=len(raw), reason=reason, key=key
                            )
                        )
                    offset += len(raw)
                    self._valid_end = offset
        sidecar = quarantine_path(self.path)
        if sidecar.exists():
            with sidecar.open("rb") as handle:
                for raw in handle:
                    if not raw.endswith(b"\n"):
                        break
                    try:
                        entry = json.loads(raw)
                        key = entry.get("key")
                    except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                        continue
                    if key is not None:
                        key = str(key)
                        disk_appearances[key] = disk_appearances.get(key, 0) + 1
        # Merge rather than replace: in-session append attempts (including
        # torn ones whose bytes a re-scan cannot frame) must keep counting,
        # or an injected fault keyed on the attempt number could refire on
        # the very retry meant to recover from it.
        for key, count in disk_appearances.items():
            self._appearances[key] = max(self._appearances.get(key, 0), count)

    def _heal(self) -> None:
        """Quarantine corrupt lines and atomically rewrite the intact ones.

        Runs only on the append path (the writer owns the file; read-only
        consumers never mutate it).  Corrupt lines go to the sidecar with
        their offset and reason, then the journal is rebuilt from the
        intact lines in offset order via temp-file + ``os.replace`` so a
        kill mid-heal leaves either the old file or the new one, never a
        mix.  Quarantined keys drop out of the index, so their chunks are
        recomputed (bitwise-identically) on the next lookup.
        """
        if not self._corrupt:
            return
        with self.path.open("rb") as handle:
            content = handle.read()
        sidecar = quarantine_path(self.path)
        sidecar.parent.mkdir(parents=True, exist_ok=True)
        with sidecar.open("ab") as side:
            for issue in self._corrupt:
                raw = content[issue.offset : issue.offset + issue.length]
                entry = {
                    "offset": issue.offset,
                    "reason": issue.reason,
                    "key": issue.key,
                    "raw": raw.decode("utf-8", errors="replace"),
                }
                side.write(
                    (json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n").encode(
                        "utf-8"
                    )
                )
            side.flush()
            os.fsync(side.fileno())
        corrupt_spans = {(issue.offset, issue.length) for issue in self._corrupt}
        temporary = self.path.with_suffix(self.path.suffix + ".tmp")
        with temporary.open("wb") as rebuilt:
            cursor = 0
            end = self._valid_end  # complete lines only; drops any torn tail
            while cursor < end:
                newline = content.index(b"\n", cursor, end)
                length = newline + 1 - cursor
                if (cursor, length) not in corrupt_spans:
                    rebuilt.write(content[cursor : cursor + length])
                cursor += length
            rebuilt.flush()
            os.fsync(rebuilt.fileno())
        os.replace(temporary, self.path)
        self.healed_count += len(self._corrupt)
        self._scan()  # offsets moved; corrupt list is now empty

    def _open_appender(self) -> io.BufferedWriter:
        if self._appender is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self.path.exists() and self.path.stat().st_size != self._valid_end:
                # The file changed since our scan (another store instance
                # appended, or a kill left a torn tail): re-index from disk
                # so we never truncate intact records on stale knowledge.
                self._scan()
            self._heal()
            if self.path.exists() and self.path.stat().st_size > self._valid_end:
                # Only a genuinely torn tail remains past the complete
                # lines; cut it off so the next record starts on a line
                # boundary.
                with self.path.open("r+b") as handle:
                    handle.truncate(self._valid_end)
            self._appender = self.path.open("ab")
        return self._appender

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> Iterator[str]:
        return iter(self._index)

    def appearances(self, key: str) -> int:
        """How many times *key* has been appended (or append was attempted)."""
        return self._appearances.get(key, 0)

    def get(self, key: str) -> dict[str, Any] | None:
        """The journaled record for *key*, or ``None``.

        Lookups re-verify the record's checksum, so corruption that arrives
        *after* the open-time scan (or survives in a record the scan could
        not vet) is still caught: the journal re-scans — which flags the
        record for quarantine at the next append — and the lookup reports a
        miss instead of replaying damaged bytes.
        """
        for _ in range(2):  # original view, then once more after a re-scan
            location = self._index.get(key)
            if location is None:
                return None
            offset, length = location
            with self.path.open("rb") as handle:
                handle.seek(offset)
                raw = handle.read(length)
            record, reason = _classify_line(raw) if raw.endswith(b"\n") else (None, "torn")
            if reason is None:
                return record
            self._scan()
        raise StoreError(
            f"journal record for {key} at offset {offset} is corrupt after re-scan: {reason}"
        )

    def append(self, key: str, payload: dict[str, Any], **metadata: Any) -> None:
        """Durably journal one completed chunk (last write wins per key)."""
        from repro.faults import InjectedTornWrite, journal_fault_action

        record = {"key": key, **metadata, "payload": payload}
        record["checksum"] = record_checksum(record)
        encoded = (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        action = journal_fault_action(key, self._appearances.get(key, 0))
        handle = self._open_appender()
        offset = self._valid_end
        self._appearances[key] = self._appearances.get(key, 0) + 1
        if action == "torn":
            # Simulate a kill mid-write: half the record reaches disk, no
            # newline, and the writer dies (here: raises).  Close the
            # appender so the retry's _open_appender re-scans and truncates
            # the torn bytes instead of concatenating onto them.
            handle.write(encoded[: max(1, len(encoded) // 2)])
            handle.flush()
            os.fsync(handle.fileno())
            self.close()
            raise InjectedTornWrite(
                f"injected torn append for chunk {key} (fault plan)"
            )
        if action == "corrupt":
            encoded = _corrupt_payload_bytes(encoded)
        handle.write(encoded)
        handle.flush()
        os.fsync(handle.fileno())
        self._index[key] = (offset, len(encoded))
        self._valid_end = offset + len(encoded)

    def repair(self) -> None:
        """Recover from a failed append: drop the writer and re-index.

        The next append re-opens the appender, which truncates any torn
        bytes the failure left behind and heals newly detected corruption.
        """
        self.close()
        self._scan()

    def close(self) -> None:
        if self._appender is not None:
            self._appender.close()
            self._appender = None

    def __enter__(self) -> "ChunkJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _corrupt_payload_bytes(encoded: bytes) -> bytes:
    """Flip one payload digit in an encoded record (fault injection only).

    The damage is deliberately *quiet*: the line stays complete and
    syntactically valid JSON with its key intact — only the checksum no
    longer matches — which models bit rot rather than a torn write and
    exercises the quarantine path end to end (detection, sidecar entry
    preserving the key, recompute of exactly that chunk).  Digits are
    swapped for digits (never ``0``, to avoid minting invalid leading
    zeros), so the record's framing is untouched.
    """
    marker = encoded.find(b'"payload"')
    start = marker if marker >= 0 else 0
    for position in range(start, len(encoded)):
        byte = encoded[position]
        if ord("0") <= byte <= ord("9"):
            replacement = ord("1") if byte != ord("1") else ord("2")
            return encoded[:position] + bytes((replacement,)) + encoded[position + 1 :]
    return encoded  # no digit to flip: leave the record alone
