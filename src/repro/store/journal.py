"""Append-only JSONL chunk journal: the store's durability layer.

Completed simulation chunks are journaled *as they finish*: one JSON line
per chunk, carrying the chunk's content-address key, a little provenance
metadata, and the full serialised payload.  The file is append-only and
flushed after every record, so a run killed mid-sweep (SIGTERM, Ctrl-C,
OOM) loses at most the chunk it was simulating — everything journaled
before the kill replays from disk on the next run.

Crash tolerance is structural rather than transactional:

* a record becomes visible only once its trailing newline is on disk, so a
  reader never sees a half-record as valid;
* on open, the journal scans forward and indexes ``key -> (offset, length)``
  per intact line, stopping at the first corrupt or truncated record;
* before the first append of a new session, any truncated tail left by a
  kill is cut off, so new records never concatenate onto a partial line.

Replaying is lazy: the open-time scan keeps only offsets, and payloads are
re-parsed on lookup, so a large journal costs one sequential read to index
and one seek per cache hit.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import StoreError

__all__ = ["ChunkJournal"]


class ChunkJournal:
    """Offset-indexed append-only JSONL file of completed chunk records."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._index: dict[str, tuple[int, int]] = {}
        self._valid_end = 0
        self._appender: io.BufferedWriter | None = None
        self._scan()

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _scan(self) -> None:
        """Index every intact record; remember where the intact prefix ends."""
        self._index.clear()
        self._valid_end = 0
        if not self.path.exists():
            return
        with self.path.open("rb") as handle:
            offset = 0
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # truncated tail: a record killed mid-write
                try:
                    record = json.loads(raw)
                    key = record["key"]
                except (json.JSONDecodeError, KeyError, TypeError, UnicodeDecodeError):
                    break  # corrupt line: everything after it is suspect
                self._index[str(key)] = (offset, len(raw))
                offset += len(raw)
                self._valid_end = offset

    def _open_appender(self) -> io.BufferedWriter:
        if self._appender is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self.path.exists() and self.path.stat().st_size != self._valid_end:
                # The file changed since our scan (another store instance
                # appended, or a kill left a torn tail): re-index from disk
                # so we never truncate intact records on stale knowledge.
                self._scan()
            if self.path.exists() and self.path.stat().st_size > self._valid_end:
                # Only a genuinely torn tail remains past the intact prefix;
                # cut it off so the next record starts on a line boundary.
                with self.path.open("r+b") as handle:
                    handle.truncate(self._valid_end)
            self._appender = self.path.open("ab")
        return self._appender

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> Iterator[str]:
        return iter(self._index)

    def get(self, key: str) -> dict[str, Any] | None:
        """The journaled record for *key*, or ``None``."""
        location = self._index.get(key)
        if location is None:
            return None
        offset, length = location
        with self.path.open("rb") as handle:
            handle.seek(offset)
            raw = handle.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise StoreError(
                f"journal record for {key} at offset {offset} is corrupt: {error}"
            ) from error

    def append(self, key: str, payload: dict[str, Any], **metadata: Any) -> None:
        """Durably journal one completed chunk (last write wins per key)."""
        record = {"key": key, **metadata, "payload": payload}
        encoded = (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        handle = self._open_appender()
        offset = self._valid_end
        handle.write(encoded)
        handle.flush()
        os.fsync(handle.fileno())
        self._index[key] = (offset, len(encoded))
        self._valid_end = offset + len(encoded)

    def close(self) -> None:
        if self._appender is not None:
            self._appender.close()
            self._appender = None

    def __enter__(self) -> "ChunkJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
