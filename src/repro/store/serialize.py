"""Bitwise-faithful JSON serialisation of ensemble results.

The store persists :class:`~repro.lv.ensemble.LVEnsembleResult` chunks as
plain JSON so journal lines stay greppable and diffable.  Round-tripping is
*bitwise*: integer and boolean arrays serialise losslessly by construction,
and float64 values survive because Python's ``repr`` (which ``json`` uses)
emits the shortest string that parses back to the identical IEEE-754 double.
Every array records its dtype explicitly, so reloaded chunks concatenate and
compare equal to freshly computed ones down to the last bit — the property
the resume-determinism tests enforce.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

from repro.exceptions import StoreError
from repro.lv.ensemble import LVEnsembleResult
from repro.lv.params import CompetitionMechanism, LVParams
from repro.lv.state import LVState
from repro.store.keys import RESULT_SCHEMA_VERSION, params_payload

__all__ = ["ensemble_to_payload", "ensemble_from_payload"]

#: Array attributes of :class:`LVEnsembleResult`, in declaration order.
_ARRAY_FIELDS = (
    "final_x0",
    "final_x1",
    "total_events",
    "termination_codes",
    "births",
    "deaths",
    "interspecific_events",
    "intraspecific_events",
    "bad_noncompetitive_events",
    "good_events",
    "noise_individual",
    "noise_competitive",
    "max_total_population",
    "min_gap_seen",
    "hit_tie",
)


def _array_payload(array: npt.NDArray[Any]) -> dict[str, Any]:
    return {"dtype": str(array.dtype), "data": array.tolist()}


def _array_from_payload(payload: dict[str, Any]) -> npt.NDArray[Any]:
    return np.array(payload["data"], dtype=np.dtype(payload["dtype"]))


def ensemble_to_payload(result: LVEnsembleResult) -> dict[str, Any]:
    """JSON-serialisable payload of one ensemble result.

    Generic-scenario ensembles additionally record the scenario name, the
    full ``(R, S)`` ``finals`` array, and the initial counts tuple; the
    two-species default omits them (absent keys mean ``"lv2"``), keeping
    default-path payloads byte-compatible modulo the schema number.
    """
    payload: dict[str, Any] = {
        "schema": RESULT_SCHEMA_VERSION,
        "params": params_payload(result.params),
        "initial_state": [result.initial_state.x0, result.initial_state.x1],
        "arrays": {
            name: _array_payload(getattr(result, name)) for name in _ARRAY_FIELDS
        },
    }
    if result.leap_events is not None:
        payload["arrays"]["leap_events"] = _array_payload(result.leap_events)
    if result.finals is not None:
        payload["scenario"] = result.scenario
        payload["initial_counts"] = [
            int(count) for count in (result.initial_counts or ())
        ]
        payload["arrays"]["finals"] = _array_payload(result.finals)
    return payload


def ensemble_from_payload(payload: dict[str, Any]) -> LVEnsembleResult:
    """Inverse of :func:`ensemble_to_payload`."""
    try:
        schema = payload["schema"]
        if schema != RESULT_SCHEMA_VERSION:
            raise StoreError(
                f"stored chunk has schema {schema}, expected {RESULT_SCHEMA_VERSION}"
            )
        rates = payload["params"]
        params = LVParams(
            beta=rates["beta"],
            delta=rates["delta"],
            alpha0=rates["alpha0"],
            alpha1=rates["alpha1"],
            gamma0=rates["gamma0"],
            gamma1=rates["gamma1"],
            mechanism=CompetitionMechanism(rates["mechanism"]),
        )
        arrays = payload["arrays"]
        fields = {name: _array_from_payload(arrays[name]) for name in _ARRAY_FIELDS}
        leap = arrays.get("leap_events")
        finals = arrays.get("finals")
        initial_counts = payload.get("initial_counts")
        return LVEnsembleResult(
            params=params,
            initial_state=LVState(*payload["initial_state"]),
            leap_events=None if leap is None else _array_from_payload(leap),
            scenario=payload.get("scenario", "lv2"),
            finals=None if finals is None else _array_from_payload(finals),
            initial_counts=(
                None if initial_counts is None else tuple(initial_counts)
            ),
            **fields,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise StoreError(f"malformed stored chunk payload: {error}") from error
