"""Tests for the determinism-contract linter (:mod:`repro.contracts`).

Every rule ID gets a fixture snippet that triggers it and a clean twin that
does not; waiver parsing, the JSON report schema, and the CLI exit codes are
exercised end to end; and the self-check at the bottom asserts the linter
exits 0 on this repository's own source tree — the acceptance bar of the
contract-enforcement work.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.contracts import (
    CONSUMPTION_ORDER_REGISTRY,
    DEFAULT_CONFIG,
    RULE_CLASSES,
    RULES,
    LintError,
    StreamConsumer,
    lint_paths,
    parse_waivers,
    render_json,
    render_text,
    result_payload,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(tmp_path, relpath, source, *, registry=None, paths=None):
    """Lint one dedented *source* snippet placed at *relpath* under a tmp root.

    The consumption-order registry defaults to empty so stream mentions in
    unrelated fixtures never produce incidental RC104 findings; RC104/RC105
    tests pass their own registry.
    """
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return lint_paths(
        paths or [relpath],
        root=tmp_path,
        config=DEFAULT_CONFIG,
        registry={} if registry is None else registry,
    )


def active_rule_ids(result):
    return [finding.rule_id for finding in result.active]


class TestRuleCatalog:
    def test_at_least_eight_rules_across_the_four_contract_classes(self):
        contract_rules = [r for r in RULES.values() if not r.id.startswith("RC9")]
        assert len(contract_rules) >= 8
        assert {r.rule_class for r in contract_rules} == {
            "rng-discipline",
            "iteration-order",
            "store-key-purity",
            "nopython-subset",
        }

    def test_every_rule_id_is_stable_and_self_describing(self):
        for identifier, registered in RULES.items():
            assert registered.id == identifier
            assert identifier.startswith("RC") and len(identifier) == 5
            assert int(identifier[2]) in RULE_CLASSES
            assert registered.title and registered.rationale


class TestRngDiscipline:
    def test_rc101_global_numpy_random(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/mod.py",
            """
            import numpy as np

            def draw():
                return np.random.random()
            """,
        )
        assert active_rule_ids(result) == ["RC101"]

    def test_rc101_stdlib_random(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/kinetics/mod.py",
            """
            import random

            def draw():
                return random.randint(0, 10)
            """,
        )
        assert active_rule_ids(result) == ["RC101"]

    def test_rc102_wall_clock(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/mod.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert active_rule_ids(result) == ["RC102"]

    def test_rc102_datetime_now_and_urandom(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/mod.py",
            """
            import os
            from datetime import datetime

            def stamp():
                return datetime.now(), os.urandom(8)
            """,
        )
        assert active_rule_ids(result) == ["RC102", "RC102"]

    def test_rc103_generator_construction_in_engine_code(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/scenario/mod.py",
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert active_rule_ids(result) == ["RC103"]

    def test_rc103_bare_constructor_name(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/mod.py",
            """
            from numpy.random import SeedSequence

            def make(entropy):
                return SeedSequence(entropy)
            """,
        )
        assert active_rule_ids(result) == ["RC103"]

    def test_rc103_exempt_inside_repro_rng(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/rng.py",
            """
            import numpy as np

            def as_generator(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert active_rule_ids(result) == []

    def test_engine_scope_only(self, tmp_path):
        # The same global-RNG call outside engine code is not RC101 territory.
        result = lint_snippet(
            tmp_path,
            "src/repro/analysis/mod.py",
            """
            import numpy as np

            def draw():
                return np.random.random()
            """,
        )
        assert active_rule_ids(result) == []

    def test_rc104_undeclared_stream_consumer(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/mod.py",
            """
            def advance(step_generator):
                return step_generator.random(8)
            """,
            registry={},
        )
        assert active_rule_ids(result) == ["RC104"]
        (finding,) = result.active
        assert finding.symbol == "advance"

    def test_rc104_forwarding_counts_as_consumption(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/mod.py",
            """
            def finish(member, tail_generator):
                return run_tail(member, tail_generator)
            """,
            registry={},
        )
        assert active_rule_ids(result) == ["RC104"]

    def test_rc104_declared_consumer_is_clean(self, tmp_path):
        registry = {
            "repro.lv.mod": (
                StreamConsumer("advance", "step", "test fixture"),
            )
        }
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/mod.py",
            """
            def advance(step_generator):
                return step_generator.random(8)
            """,
            registry=registry,
        )
        assert active_rule_ids(result) == []

    def test_rc104_signature_alone_does_not_consume(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/mod.py",
            """
            def describe(step_generator):
                return "a stream"
            """,
            registry={},
        )
        assert active_rule_ids(result) == []

    def test_rc105_stale_registry_entry(self, tmp_path):
        registry = {
            "repro.lv.mod": (
                StreamConsumer("gone", "tail", "test fixture"),
            )
        }
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/mod.py",
            """
            def present():
                return 1
            """,
            registry=registry,
        )
        assert active_rule_ids(result) == ["RC105"]


class TestIterationOrder:
    def test_rc201_unsorted_glob(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/analysis/mod.py",
            """
            import glob

            def entries():
                return [path for path in glob.glob("*.json")]
            """,
        )
        assert active_rule_ids(result) == ["RC201"]

    def test_rc201_unsorted_iterdir(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/mod.py",
            """
            def entries(directory):
                for path in directory.iterdir():
                    yield path
            """,
        )
        assert active_rule_ids(result) == ["RC201"]

    def test_rc201_sorted_scan_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/analysis/mod.py",
            """
            import glob

            def entries(directory):
                direct = sorted(glob.glob("*.json"))
                mapped = sorted(p.name for p in directory.iterdir())
                return direct, mapped
            """,
        )
        assert active_rule_ids(result) == []

    def test_rc202_set_iteration_in_order_critical_code(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/mod.py",
            """
            def keys(a, b):
                return [k for k in {a, b}]
            """,
        )
        assert active_rule_ids(result) == ["RC202"]

    def test_rc202_does_not_apply_outside_order_critical_code(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/mod.py",
            """
            def keys(a, b):
                return [k for k in {a, b}]
            """,
        )
        assert active_rule_ids(result) == []

    def test_rc203_unsorted_json_in_order_critical_code(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/shard/mod.py",
            """
            import json

            def encode(payload):
                return json.dumps(payload)
            """,
        )
        assert active_rule_ids(result) == ["RC203"]

    def test_rc203_sort_keys_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/mod.py",
            """
            import json

            def encode(payload):
                return json.dumps(payload, sort_keys=True)
            """,
        )
        assert active_rule_ids(result) == []


class TestStoreKeyPurity:
    def test_rc301_undeclared_key_field(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/keys.py",
            """
            def run_key():
                return {"experiment": 1, "rogue_field": 2}
            """,
        )
        assert active_rule_ids(result) == ["RC301"]
        (finding,) = result.active
        assert "rogue_field" in finding.message

    def test_rc302_excluded_field_reference(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/keys.py",
            """
            def chunk_key(jobs):
                return {"seed": jobs}
            """,
        )
        assert active_rule_ids(result) == ["RC302"]

    def test_rc302_excluded_field_as_string(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/keys.py",
            """
            def config_hash(settings):
                return {"scale": settings["engine"]}
            """,
        )
        assert active_rule_ids(result) == ["RC302"]

    def test_whitelisted_fields_are_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/keys.py",
            """
            def run_key(experiment_id, config, seed_root):
                return {
                    "experiment": experiment_id,
                    "config": config,
                    "seed_root": seed_root,
                    "schema": 2,
                }
            """,
        )
        assert active_rule_ids(result) == []

    def test_docstrings_mentioning_excluded_words_are_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/keys.py",
            '''
            def run_key(experiment_id):
                """Excludes jobs and the resolved engine by contract."""
                return {"experiment": experiment_id}
            ''',
        )
        assert active_rule_ids(result) == []

    def test_functions_outside_the_whitelist_are_not_checked(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/keys.py",
            """
            def helper():
                return {"anything": 1}
            """,
        )
        assert active_rule_ids(result) == []


class TestNopythonSubset:
    def test_rc401_forbidden_construct_in_decorated_kernel(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/native.py",
            """
            import numba

            @numba.njit(cache=True)
            def kernel(x):
                return [value for value in range(x)]
            """,
        )
        assert "RC401" in active_rule_ids(result)

    def test_rc401_forbidden_call_via_alias_application(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/scenario/native.py",
            """
            import numba

            _jit = numba.njit(cache=True)

            def _kernel_py(x):
                print(x)
                return x

            kernel = _jit(_kernel_py)
            """,
        )
        assert "RC401" in active_rule_ids(result)

    def test_rc401_configured_kernel_checked_without_njit(self, tmp_path):
        # The numba-free fallback binds the plain function; the configured
        # kernel-functions list keeps it inside the contract anyway.
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/native.py",
            """
            def _lockstep_kernel_py(state):
                with open("log") as handle:
                    handle.read()
                return state
            """,
        )
        assert "RC401" in active_rule_ids(result)

    def test_rc401_reading_undeclared_global(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/native.py",
            """
            import numba

            _TABLE = build_table()

            @numba.njit(cache=True)
            def kernel(x):
                return _TABLE[x]
            """,
        )
        assert "RC401" in active_rule_ids(result)

    def test_clean_kernel_passes(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/native.py",
            """
            import numba

            _STATUS_DONE = 0
            _S_X0, _S_X1 = range(2)

            @numba.njit(cache=True, fastmath=False)
            def kernel(scratch, block, budget):
                total = 0.0
                for index in range(len(block)):
                    if scratch[_S_X0] <= 0:
                        break
                    total += block[index] * float(budget)
                    scratch[_S_X1] = min(scratch[_S_X1], budget)
                return _STATUS_DONE, total
            """,
        )
        assert active_rule_ids(result) == []

    def test_rc402_missing_cache(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/native.py",
            """
            import numba

            @numba.njit
            def kernel(x):
                return x
            """,
        )
        assert active_rule_ids(result) == ["RC402"]

    def test_rc402_fastmath_enabled(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/native.py",
            """
            import numba

            @numba.njit(cache=True, fastmath=True)
            def kernel(x):
                return x
            """,
        )
        assert active_rule_ids(result) == ["RC402"]

    def test_kernel_modules_scope(self, tmp_path):
        # The same forbidden construct outside a kernel module is fine.
        result = lint_snippet(
            tmp_path,
            "src/repro/lv/mod.py",
            """
            def helper(x):
                return [value for value in range(x)]
            """,
        )
        assert active_rule_ids(result) == []


class TestWaivers:
    def test_parse_single_and_multi_rule_waivers(self):
        source = textwrap.dedent(
            """
            a = 1  # repro: noqa-RC203: bytes are column-ordered on purpose
            b = 2  # repro: noqa-RC201, RC202: scan feeds an order-free set
            c = 3  # repro: noqa-RC101
            """
        )
        waivers = parse_waivers(source, "mod.py")
        assert waivers[2].rule_ids == ("RC203",)
        assert waivers[2].justified
        assert waivers[3].rule_ids == ("RC201", "RC202")
        assert waivers[4].rule_ids == ("RC101",)
        assert not waivers[4].justified

    def test_justified_waiver_suppresses_and_reports(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/mod.py",
            """
            import json

            def encode(payload):
                return json.dumps(payload)  # repro: noqa-RC203: caller sorts
            """,
        )
        assert result.exit_code == 0
        (finding,) = result.findings
        assert finding.rule_id == "RC203"
        assert finding.waived
        assert finding.justification == "caller sorts"

    def test_rc901_unjustified_waiver_still_fails(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/mod.py",
            """
            import json

            def encode(payload):
                return json.dumps(payload)  # repro: noqa-RC203
            """,
        )
        assert result.exit_code == 1
        assert "RC901" in active_rule_ids(result)

    def test_rc902_stale_waiver(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/mod.py",
            """
            import json

            def encode(payload):
                return json.dumps(payload, sort_keys=True)  # repro: noqa-RC203: stale
            """,
        )
        assert active_rule_ids(result) == ["RC902"]

    def test_waiver_only_covers_its_own_rule(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            "src/repro/store/mod.py",
            """
            import json

            def encode(payload):
                return json.dumps(payload)  # repro: noqa-RC201: wrong rule
            """,
        )
        # The RC203 finding stays active and the RC201 waiver is stale.
        assert sorted(active_rule_ids(result)) == ["RC203", "RC902"]


class TestReporter:
    def _fixture_result(self, tmp_path):
        return lint_snippet(
            tmp_path,
            "src/repro/store/mod.py",
            """
            import json

            def encode(payload):
                return json.dumps(payload)
            """,
        )

    def test_json_schema(self, tmp_path):
        result = self._fixture_result(tmp_path)
        document = json.loads(render_json(result))
        assert document["schema"] == 1
        assert document["tool"] == "repro.contracts"
        assert document["exit_code"] == 1
        assert document["files_scanned"] == 1
        assert document["summary"]["active"] == 1
        assert document["summary"]["by_rule"] == {"RC203": 1}
        (finding,) = document["findings"]
        assert finding["rule"] == "RC203"
        assert finding["rule_class"] == "iteration-order"
        assert finding["path"] == "src/repro/store/mod.py"
        assert finding["line"] == 5
        assert not finding["waived"]

    def test_json_bytes_are_deterministic(self, tmp_path):
        result = self._fixture_result(tmp_path)
        assert render_json(result) == render_json(result)
        assert json.dumps(result_payload(result), sort_keys=True) == json.dumps(
            result_payload(result), sort_keys=True
        )

    def test_text_report_carries_location_and_rule(self, tmp_path):
        report = render_text(self._fixture_result(tmp_path))
        assert "src/repro/store/mod.py:5:" in report
        assert "RC203" in report
        assert "1 active finding(s)" in report


class TestEngine:
    def test_missing_target_raises_lint_error(self, tmp_path):
        with pytest.raises(LintError, match="does not exist"):
            lint_paths(["src/absent"], root=tmp_path, config=DEFAULT_CONFIG)

    def test_syntax_error_raises_lint_error(self, tmp_path):
        bad = tmp_path / "src/repro/lv/bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        with pytest.raises(LintError, match="syntax error"):
            lint_paths(["src/repro/lv/bad.py"], root=tmp_path, config=DEFAULT_CONFIG)

    def test_findings_are_sorted_and_files_deduplicated(self, tmp_path):
        target = tmp_path / "src/repro/lv/mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            textwrap.dedent(
                """
                import time

                def late():
                    return time.time()

                def early():
                    return time.time_ns()
                """
            )
        )
        result = lint_paths(
            ["src/repro/lv/mod.py", "src/repro/lv", "src/repro"],
            root=tmp_path,
            config=DEFAULT_CONFIG,
            registry={},
        )
        assert result.files_scanned == 1
        assert [f.line for f in result.findings] == sorted(
            f.line for f in result.findings
        )


class TestCli:
    def _write_violation(self, tmp_path):
        target = tmp_path / "src/repro/lv/mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")

    def test_lint_exits_nonzero_on_violation(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        code = main(["lint", "--root", str(tmp_path)])
        assert code == 1
        assert "RC102" in capsys.readouterr().out

    def test_lint_json_output_file(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        output = tmp_path / "artifacts" / "lint.json"
        code = main(
            ["lint", "--root", str(tmp_path), "--format", "json", "--output", str(output)]
        )
        assert code == 1
        document = json.loads(output.read_text())
        assert document["summary"]["by_rule"] == {"RC102": 1}
        assert json.loads(capsys.readouterr().out) == document

    def test_lint_missing_target_exits_two(self, tmp_path, capsys):
        code = main(["lint", "--root", str(tmp_path), "src/nowhere"])
        assert code == 2
        assert "lint failed" in capsys.readouterr().err


class TestSelfCheck:
    """The acceptance bar: the repository's own tree is contract-clean."""

    def test_repo_source_tree_is_lint_clean(self):
        result = lint_paths(root=REPO_ROOT)
        assert result.exit_code == 0, render_text(result)

    def test_no_unjustified_waivers_in_repo(self):
        result = lint_paths(root=REPO_ROOT)
        for waiver in result.waivers:
            assert waiver.justified, f"{waiver.path}:{waiver.line} lacks a reason"
            assert waiver.used_for, f"{waiver.path}:{waiver.line} is stale"

    def test_cli_self_check_exit_zero(self, capsys):
        assert main(["lint", "--root", str(REPO_ROOT)]) == 0
        assert "0 active finding(s)" in capsys.readouterr().out

    def test_registry_matches_the_code(self):
        # Every registered module must exist, and linting it must produce
        # no RC104/RC105 drift (covered by exit 0 above, but pin the modules
        # explicitly so a registry typo fails with a readable message).
        for module_name in CONSUMPTION_ORDER_REGISTRY:
            relpath = "src/" + module_name.replace(".", "/") + ".py"
            assert (REPO_ROOT / relpath).is_file(), relpath
