"""Shared statistical-agreement tolerances for simulator-equivalence tests.

Both the single-configuration lock-step ensemble (``test_lv_ensemble.py``)
and the heterogeneous sweep engine (``test_lv_sweep_ensemble.py``) must be
statistical drop-ins for the scalar jump-chain simulator: same win
probability, same consensus-time distribution, same event accounting.  This
module centralises how two replicate collections are compared so that every
equivalence test uses the same Monte-Carlo-aware tolerances.

Tolerances are sized as ~4 standard errors at the replicate counts used by
the callers, which keeps the tests deterministic (fixed seeds) while still
failing loudly on any systematic bias.
"""

from __future__ import annotations

import numpy as np

from repro.lv.ensemble import LVEnsembleResult

__all__ = ["summary_statistics", "assert_statistically_close"]

#: Attributes whose per-replica means are compared, with relative tolerances.
_MEAN_ATTRIBUTES = {
    "interspecific_events": 0.12,
    "bad_noncompetitive_events": 0.12,
    "good_events": 0.12,
}


def summary_statistics(batch) -> dict[str, float]:
    """Reduce a replicate collection to the compared summary statistics.

    *batch* is either an :class:`~repro.lv.ensemble.LVEnsembleResult` or a
    list of :class:`~repro.lv.simulator.LVRunResult`; both reduce to the same
    statistics so any two executors can be compared against each other.
    """
    if isinstance(batch, LVEnsembleResult):
        reached = batch.reached_consensus
        times = batch.total_events[reached]
        stats = {
            "num": float(batch.num_replicates),
            "win_probability": float(batch.majority_consensus.mean()),
            "mean_consensus_time": float(times.mean()) if times.size else float("nan"),
            "mean_individual_events": float(batch.individual_events.mean()),
            "mean_noise_individual": float(batch.noise_individual.mean()),
            "std_noise_individual": float(batch.noise_individual.std(ddof=0)),
            "mean_noise_competitive": float(batch.noise_competitive.mean()),
        }
        for name in _MEAN_ATTRIBUTES:
            stats[f"mean_{name}"] = float(getattr(batch, name).mean())
        return stats
    times = [r.total_events for r in batch if r.reached_consensus]
    noise_ind = np.array([r.noise_individual for r in batch], dtype=float)
    stats = {
        "num": float(len(batch)),
        "win_probability": float(np.mean([r.majority_consensus for r in batch])),
        "mean_consensus_time": float(np.mean(times)) if times else float("nan"),
        "mean_individual_events": float(np.mean([r.individual_events for r in batch])),
        "mean_noise_individual": float(noise_ind.mean()),
        "std_noise_individual": float(noise_ind.std(ddof=0)),
        "mean_noise_competitive": float(
            np.mean([r.noise_competitive for r in batch])
        ),
    }
    for name in _MEAN_ATTRIBUTES:
        stats[f"mean_{name}"] = float(np.mean([getattr(r, name) for r in batch]))
    return stats


def assert_statistically_close(first, second, *, label: str = "") -> None:
    """Assert two replicate collections tell the same statistical story.

    Win probabilities must agree within a binomial ~4-standard-error band,
    consensus times and event-count means within 12% relative, and the noise
    components within ~8 standard errors of the (pooled) per-replica spread.
    """
    a = summary_statistics(first)
    b = summary_statistics(second)
    pooled = min(a["num"], b["num"])

    p = (a["win_probability"] + b["win_probability"]) / 2.0
    p_tolerance = max(4.0 * np.sqrt(max(p * (1.0 - p), 0.04) / pooled), 0.02)
    assert abs(a["win_probability"] - b["win_probability"]) < p_tolerance, (
        label,
        "win_probability",
        a["win_probability"],
        b["win_probability"],
    )

    assert a["mean_consensus_time"] == pytest_approx(b["mean_consensus_time"]), (
        label,
        "mean_consensus_time",
        a["mean_consensus_time"],
        b["mean_consensus_time"],
    )

    for name in ("mean_individual_events", *(f"mean_{k}" for k in _MEAN_ATTRIBUTES)):
        tolerance = 0.12 * max(abs(a[name]), abs(b[name]), 1.0)
        assert abs(a[name] - b[name]) < tolerance, (label, name, a[name], b[name])

    noise_scale = max(a["std_noise_individual"] / np.sqrt(pooled), 0.5)
    for name in ("mean_noise_individual", "mean_noise_competitive"):
        assert abs(a[name] - b[name]) < 8.0 * noise_scale, (
            label,
            name,
            a[name],
            b[name],
        )


def pytest_approx(value: float, rel: float = 0.12):
    """A late import shim so the helper does not hard-depend on pytest."""
    import pytest

    return pytest.approx(value, rel=rel, nan_ok=True)
