"""Tests for the generic stochastic simulators (direct, next-reaction, jump chain, tau-leaping)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crn.builders import build_birth_death_network, build_lv_network
from repro.exceptions import SimulationError
from repro.crn.network import ReactionNetwork
from repro.kinetics import (
    ConsensusReached,
    DirectMethodSimulator,
    ExtinctionReached,
    JumpChainSimulator,
    NextReactionSimulator,
    TauLeapingSimulator,
)


def _death_only_network():
    return build_birth_death_network(birth_rate=0.0, death_rate=1.0)


class TestDirectMethod:
    def test_pure_death_reaches_extinction(self):
        network = _death_only_network()
        x = network.species[0]
        simulator = DirectMethodSimulator(network)
        trajectory = simulator.run({x: 10}, stop=ExtinctionReached(x), rng=0)
        assert trajectory.termination == "extinction"
        assert trajectory.final_state == (0,)
        assert trajectory.num_events == 10

    def test_continuous_time_advances(self):
        network = _death_only_network()
        x = network.species[0]
        simulator = DirectMethodSimulator(network)
        trajectory = simulator.run({x: 10}, stop=ExtinctionReached(x), rng=0)
        assert trajectory.final_time > 0.0

    def test_absorbed_when_no_reaction_possible(self):
        network = _death_only_network()
        x = network.species[0]
        simulator = DirectMethodSimulator(network)
        trajectory = simulator.run({x: 0}, rng=0)
        assert trajectory.termination == "absorbed"
        assert trajectory.num_events == 0

    def test_max_events_budget(self):
        network = build_birth_death_network(birth_rate=5.0, death_rate=0.1)
        x = network.species[0]
        simulator = DirectMethodSimulator(network)
        trajectory = simulator.run({x: 5}, max_events=20, rng=0)
        assert trajectory.termination == "max-events"
        assert trajectory.num_events == 20

    def test_reproducible_with_seed(self):
        network = build_lv_network(beta=1, delta=1, alpha0=0.5, alpha1=0.5)
        x0, x1 = network.species
        simulator = DirectMethodSimulator(network)
        stop = ConsensusReached(x0, x1)
        first = simulator.run({x0: 20, x1: 10}, stop=stop, rng=42)
        second = simulator.run({x0: 20, x1: 10}, stop=stop, rng=42)
        assert first.final_state == second.final_state
        assert first.num_events == second.num_events

    def test_rejects_empty_network(self):
        with pytest.raises(SimulationError):
            DirectMethodSimulator(ReactionNetwork())

    def test_invalid_max_events(self):
        network = _death_only_network()
        simulator = DirectMethodSimulator(network)
        with pytest.raises(ValueError):
            simulator.run({network.species[0]: 3}, max_events=0)


class TestJumpChain:
    def test_time_equals_events(self):
        network = _death_only_network()
        x = network.species[0]
        simulator = JumpChainSimulator(network)
        trajectory = simulator.run({x: 7}, stop=ExtinctionReached(x), rng=1)
        assert trajectory.final_time == trajectory.num_events == 7

    def test_consensus_stop_on_lv_network(self):
        network = build_lv_network(beta=1, delta=1, alpha0=0.5, alpha1=0.5)
        x0, x1 = network.species
        simulator = JumpChainSimulator(network)
        trajectory = simulator.run({x0: 30, x1: 10}, stop=ConsensusReached(x0, x1), rng=3)
        assert trajectory.termination == "consensus"
        final = trajectory.final_mapping()
        assert final[x0] == 0 or final[x1] == 0

    def test_event_kind_counts_sum_to_total(self):
        network = build_lv_network(beta=1, delta=1, alpha0=0.5, alpha1=0.5)
        x0, x1 = network.species
        simulator = JumpChainSimulator(network)
        trajectory = simulator.run({x0: 30, x1: 10}, stop=ConsensusReached(x0, x1), rng=3)
        assert trajectory.individual_events + trajectory.competitive_events == trajectory.num_events


class TestNextReaction:
    def test_pure_death_reaches_extinction(self):
        network = _death_only_network()
        x = network.species[0]
        simulator = NextReactionSimulator(network)
        trajectory = simulator.run({x: 12}, stop=ExtinctionReached(x), rng=5)
        assert trajectory.final_state == (0,)
        assert trajectory.num_events == 12

    def test_agrees_with_direct_method_statistically(self):
        """Mean extinction time of a subcritical chain matches between simulators."""
        network = build_birth_death_network(birth_rate=0.5, death_rate=1.5)
        x = network.species[0]
        stop = ExtinctionReached(x)
        rng = np.random.default_rng(7)
        direct = DirectMethodSimulator(network)
        nrm = NextReactionSimulator(network)
        direct_times = [
            direct.run({x: 20}, stop=stop, rng=rng).final_time for _ in range(150)
        ]
        nrm_times = [nrm.run({x: 20}, stop=stop, rng=rng).final_time for _ in range(150)]
        assert np.mean(direct_times) == pytest.approx(np.mean(nrm_times), rel=0.25)


class TestTauLeaping:
    def test_parameter_validation(self):
        network = _death_only_network()
        with pytest.raises(ValueError):
            TauLeapingSimulator(network, tau=0.0)
        with pytest.raises(ValueError):
            TauLeapingSimulator(network, tau=0.1, min_tau=1.0)

    def test_reaches_extinction_without_negative_counts(self):
        network = build_birth_death_network(birth_rate=0.2, death_rate=1.0)
        x = network.species[0]
        simulator = TauLeapingSimulator(network, tau=0.05)
        trajectory = simulator.run({x: 200}, stop=ExtinctionReached(x), rng=11)
        assert trajectory.termination == "extinction"
        assert trajectory.final_state == (0,)

    def test_mean_decay_matches_exact_simulation(self):
        """Population mean after a fixed horizon matches the direct method."""
        network = build_birth_death_network(birth_rate=0.0, death_rate=1.0)
        x = network.species[0]
        rng = np.random.default_rng(3)
        exact_finals = []
        leap_finals = []
        from repro.kinetics import MaxTime

        for _ in range(120):
            exact_finals.append(
                DirectMethodSimulator(network)
                .run({x: 100}, stop=MaxTime(0.5), rng=rng)
                .final_state[0]
            )
            leap_finals.append(
                TauLeapingSimulator(network, tau=0.02)
                .run({x: 100}, stop=MaxTime(0.5), rng=rng)
                .final_state[0]
            )
        # Expected mean is 100 * exp(-0.5) ~ 60.6; both should be close.
        assert np.mean(exact_finals) == pytest.approx(100 * np.exp(-0.5), rel=0.1)
        assert np.mean(leap_finals) == pytest.approx(100 * np.exp(-0.5), rel=0.1)

    def test_max_time_stop_does_not_overshoot(self):
        """Regression: the final leap used to record a stop time up to tau past the boundary."""
        from repro.kinetics import MaxTime

        network = build_birth_death_network(birth_rate=1.0, death_rate=1.0)
        x = network.species[0]
        simulator = TauLeapingSimulator(network, tau=0.25)
        for seed in range(5):
            trajectory = simulator.run({x: 500}, stop=MaxTime(1.0), rng=seed)
            assert trajectory.termination == "max-time"
            assert trajectory.final_time <= 1.0 + 1e-12

    def test_max_time_clamp_applies_through_nested_anyof(self):
        """The boundary clamp must find a MaxTime nested inside composite stops."""
        from repro.kinetics import AnyOf, MaxTime

        network = build_birth_death_network(birth_rate=1.0, death_rate=1.0)
        x = network.species[0]
        simulator = TauLeapingSimulator(network, tau=0.25)
        stop = AnyOf([ExtinctionReached(x), AnyOf([MaxTime(1.0)])])
        trajectory = simulator.run({x: 500}, stop=stop, rng=2)
        assert trajectory.termination == "max-time"
        assert trajectory.final_time <= 1.0 + 1e-12

    def test_fallback_reaction_crossing_the_time_boundary_is_not_applied(self):
        """A fallback reaction whose waiting time crosses MaxTime must not fire.

        Exact SSA semantics: the state at the time limit is the state before
        the next reaction.  The degenerate single-reaction fallback used to
        apply the crossing reaction and clamp its recorded time onto the
        boundary.
        """
        from repro.kinetics import MaxTime
        from repro.kinetics.events import EventKind

        network = build_birth_death_network(birth_rate=0.0, death_rate=1000.0)
        x = network.species[0]
        limit = 0.003
        simulator = TauLeapingSimulator(network, tau=4.0, min_tau=3.0)
        for seed in range(10):
            trajectory = simulator.run(
                {x: 5}, stop=MaxTime(limit), record_steps=True, rng=seed
            )
            assert trajectory.final_time <= limit
            # Any applied fallback reaction happened strictly before the
            # boundary — the old behaviour recorded the crossing reaction
            # clamped onto it.  (Zero-firing leaps shortened onto the
            # boundary are fine; leaps may also bundle deaths, so recorded
            # DEATH steps only lower-bound the removals.)
            for step in trajectory.steps:
                if step.kind is EventKind.DEATH:
                    assert step.time < limit
            assert 5 - trajectory.final_state[0] >= trajectory.events_of_kind(
                EventKind.DEATH
            )

    def test_max_events_meters_estimated_firings(self):
        """Regression: the budget used to count leaps while exact simulators count reactions."""
        network = _death_only_network()
        x = network.species[0]
        simulator = TauLeapingSimulator(network, tau=0.01)
        trajectory = simulator.run({x: 5000}, max_events=100, rng=3)
        assert trajectory.termination == "max-events"
        fired = 5000 - trajectory.final_state[0]
        # The budget is metered in reactions: at ~50 firings per leap the run
        # must stop within one leap of the 100-firing budget, after only a
        # handful of recorded leaps.
        assert 100 <= fired <= 300
        assert trajectory.num_events < 10

    def test_max_events_stop_condition_counts_firings(self):
        from repro.kinetics import MaxEvents

        network = _death_only_network()
        x = network.species[0]
        simulator = TauLeapingSimulator(network, tau=0.01)
        trajectory = simulator.run({x: 5000}, stop=MaxEvents(100), rng=3)
        assert trajectory.termination == "max-events"
        assert 100 <= 5000 - trajectory.final_state[0] <= 300

    def test_nonpositive_budget_message_reports_coerced_value(self):
        """Regression: the error used to format the pre-int() value."""
        network = _death_only_network()
        x = network.species[0]
        simulator = TauLeapingSimulator(network, tau=0.01)
        with pytest.raises(ValueError, match=r"got 0$"):
            simulator.run({x: 10}, max_events=0.5)

    def test_degenerate_fallback_labels_real_reaction(self):
        """Regression: SSA fallback steps were recorded as 'tau-leap'/OTHER events."""
        from repro.kinetics.events import EventKind

        network = _death_only_network()
        x = network.species[0]
        simulator = TauLeapingSimulator(network, tau=4.0, min_tau=3.0)
        trajectory = simulator.run(
            {x: 3}, stop=ExtinctionReached(x), record_steps=True, rng=0
        )
        assert trajectory.final_state == (0,)
        fallback_steps = [
            step for step in trajectory.steps if step.reaction_label != "tau-leap"
        ]
        assert fallback_steps, "expected at least one degenerate fallback step"
        assert all(step.kind is EventKind.DEATH for step in fallback_steps)
        assert trajectory.events_of_kind(EventKind.DEATH) == len(fallback_steps)


class TestCrossSimulatorAgreement:
    def test_majority_probability_agrees_between_jump_chain_and_direct(self):
        """Consensus probability is invariant between continuous time and the jump chain."""
        network = build_lv_network(beta=1, delta=1, alpha0=0.5, alpha1=0.5)
        x0, x1 = network.species
        stop = ConsensusReached(x0, x1)
        rng = np.random.default_rng(17)
        runs = 150

        def success_rate(simulator) -> float:
            wins = 0
            for _ in range(runs):
                trajectory = simulator.run({x0: 24, x1: 8}, stop=stop, rng=rng)
                final = trajectory.final_mapping()
                wins += int(final[x0] > 0 and final[x1] == 0)
            return wins / runs

        direct_rate = success_rate(DirectMethodSimulator(network))
        jump_rate = success_rate(JumpChainSimulator(network))
        assert direct_rate == pytest.approx(jump_rate, abs=0.12)
        assert direct_rate > 0.7
