"""Tests for the generic scenario execution engine.

The contracts under test mirror the two-species lock-step engine's:

* **engine parity** — the numba kernel path (or its interpreted twin when
  numba is absent) is bitwise-identical to the vectorized numpy path;
* **fusion invariance** — a member's result is bitwise-identical whether it
  runs alone or fused into a mixed lv2/generic mega-batch, on both the
  exact and tau backends;
* **determinism** — same seeds, same bits, and ``collect="win"`` never
  perturbs trajectories;
* **result semantics** — the generic ``LVEnsembleResult`` extensions
  (winners, majority consensus, concatenation, store round-trip, chunk-key
  fingerprinting).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidConfigurationError
from repro.lv.ensemble import LVEnsembleResult, SweepMember, run_sweep_ensemble
from repro.lv.params import LVParams
from repro.lv.state import LVState
from repro.lv.tau import run_tau_sweep_ensemble
from repro.scenario.engine import run_scenario_members, run_scenario_members_tau
from repro.scenario.spec import TERM_ABSORBED, TERM_CONSENSUS, TERM_MAX_EVENTS
from repro.store.keys import chunk_key
from repro.store.serialize import ensemble_from_payload, ensemble_to_payload

PARAMS = LVParams.self_destructive(beta=1.0, delta=1.0, alpha=1.0)
CAT_PARAMS = LVParams.self_destructive(beta=0.3, delta=0.3, alpha=0.05)


def _members() -> list[SweepMember]:
    return [
        SweepMember(PARAMS, (30, 20, 15), 40, max_events=50_000, scenario="opinion3"),
        SweepMember(PARAMS, (20, 14, 14, 12), 40, max_events=50_000, scenario="opinion4"),
        SweepMember(CAT_PARAMS, (30, 20, 60), 40, max_events=50_000, scenario="catalysis"),
    ]


def _assert_results_bitwise_equal(left, right):
    assert np.array_equal(left.finals, right.finals)
    assert np.array_equal(left.total_events, right.total_events)
    assert np.array_equal(left.termination_codes, right.termination_codes)
    assert np.array_equal(left.good_events, right.good_events)
    assert np.array_equal(left.max_total_population, right.max_total_population)


class TestEngineParity:
    @pytest.mark.parametrize("member_index", range(3))
    def test_numpy_and_native_paths_bitwise_identical(self, member_index):
        member = _members()[member_index]
        (numpy_result,) = run_scenario_members([member], [123], engine="numpy")
        (native_result,) = run_scenario_members([member], [123], engine="numba")
        _assert_results_bitwise_equal(numpy_result, native_result)

    def test_repeat_runs_are_deterministic(self):
        members = _members()
        first = run_scenario_members(members, [5, 6, 7])
        second = run_scenario_members(members, [5, 6, 7])
        for left, right in zip(first, second):
            _assert_results_bitwise_equal(left, right)

    def test_win_collect_matches_full(self):
        member = _members()[0]
        (full,) = run_scenario_members([member], [9], collect="full")
        (win,) = run_scenario_members([member], [9], collect="win")
        assert np.array_equal(full.finals, win.finals)
        assert np.array_equal(full.total_events, win.total_events)
        assert np.array_equal(full.termination_codes, win.termination_codes)


class TestFusionInvariance:
    def test_generic_member_identical_solo_or_fused_with_lv2(self):
        generic = SweepMember(PARAMS, (25, 18, 17), 30, scenario="opinion3")
        lv2 = SweepMember(PARAMS, LVState(30, 20), 30)
        fused = run_sweep_ensemble([lv2, generic, lv2], rng=42)
        # Same batch-level seed, same batch composition: fully repeatable.
        refused = run_sweep_ensemble([lv2, generic, lv2], rng=42)
        for left, right in zip(fused, refused):
            assert np.array_equal(left.total_events, right.total_events)
        # Explicit per-member seeds: solo == fused bit for bit.
        seeds = [101, 202, 303]
        fused = run_sweep_ensemble([lv2, generic, lv2], member_seeds=seeds)
        solo_generic = run_sweep_ensemble([generic], member_seeds=[202])
        _assert_results_bitwise_equal(fused[1], solo_generic[0])
        solo_lv2 = run_sweep_ensemble([lv2], member_seeds=[303])
        assert np.array_equal(fused[2].final_x0, solo_lv2[0].final_x0)
        assert np.array_equal(fused[2].total_events, solo_lv2[0].total_events)

    def test_tau_generic_member_identical_solo_or_fused(self):
        generic = SweepMember(
            CAT_PARAMS, (900, 600, 200), 8, max_events=2_000_000, scenario="catalysis"
        )
        lv2 = SweepMember(PARAMS, LVState(40, 25), 8)
        seeds = [11, 22]
        fused = run_tau_sweep_ensemble([lv2, generic], member_seeds=seeds)
        solo = run_tau_sweep_ensemble([generic], member_seeds=[22])
        _assert_results_bitwise_equal(fused[1], solo[0])

    def test_member_order_preserved_in_mixed_batches(self):
        members = [
            SweepMember(PARAMS, (25, 18, 17), 5, scenario="opinion3"),
            SweepMember(PARAMS, LVState(30, 20), 5),
            SweepMember(CAT_PARAMS, (20, 15, 40), 5, scenario="catalysis"),
        ]
        results = run_sweep_ensemble(members, member_seeds=[1, 2, 3])
        assert results[0].scenario == "opinion3"
        assert results[0].finals.shape == (5, 3)
        assert results[1].scenario == "lv2"
        assert results[1].finals is None
        assert results[2].scenario == "catalysis"
        assert results[2].finals.shape == (5, 3)


class TestTauBackend:
    def test_tau_runs_and_leaps_on_large_populations(self):
        member = SweepMember(
            PARAMS, (1100, 740, 720), 8, max_events=2_000_000, scenario="opinion3"
        )
        (result,) = run_scenario_members_tau([member], [77], epsilon=0.03)
        assert result.leap_events is not None
        assert int(result.leap_events.sum()) > 0
        assert result.reached_consensus.all()

    def test_tau_is_deterministic(self):
        member = SweepMember(
            CAT_PARAMS, (800, 500, 300), 6, max_events=2_000_000, scenario="catalysis"
        )
        (first,) = run_scenario_members_tau([member], [3], epsilon=0.03)
        (second,) = run_scenario_members_tau([member], [3], epsilon=0.03)
        _assert_results_bitwise_equal(first, second)

    def test_small_populations_resolved_by_exact_tail(self):
        # Opinion populations below the tau tail threshold: every replica is
        # handed to the shared exact tail and must still terminate cleanly.
        member = SweepMember(PARAMS, (40, 30, 20), 12, scenario="opinion3")
        (result,) = run_scenario_members_tau([member], [13], epsilon=0.03)
        codes = result.termination_codes
        assert set(np.unique(codes)) <= {TERM_CONSENSUS, TERM_ABSORBED, TERM_MAX_EVENTS}
        assert result.reached_consensus.any()


class TestResultSemantics:
    def test_winners_and_majority_consensus(self):
        member = SweepMember(PARAMS, (40, 20, 15), 30, scenario="opinion3")
        (result,) = run_scenario_members([member], [55])
        winners = result.winners
        consensus = result.reached_consensus
        assert ((winners >= -1) & (winners < 3)).all()
        assert np.array_equal(winners >= 0, consensus & ~result.dead_heat)
        # Majority consensus references opinion 0 (the initial plurality).
        assert np.array_equal(result.majority_consensus, winners == 0)

    def test_concatenate_generic_results(self):
        member = SweepMember(PARAMS, (30, 20, 15), 10, scenario="opinion3")
        (left,) = run_scenario_members([member], [1])
        (right,) = run_scenario_members([member], [2])
        merged = LVEnsembleResult.concatenate([left, right])
        assert merged.num_replicates == 20
        assert np.array_equal(merged.finals, np.concatenate([left.finals, right.finals]))
        assert merged.scenario == "opinion3"
        assert merged.initial_counts == (30, 20, 15)

    def test_concatenate_rejects_mismatched_scenarios(self):
        (opinion,) = run_scenario_members(
            [SweepMember(PARAMS, (30, 20, 15), 4, scenario="opinion3")], [1]
        )
        (catalysis,) = run_scenario_members(
            [SweepMember(CAT_PARAMS, (30, 20, 15), 4, scenario="catalysis")], [1]
        )
        with pytest.raises(InvalidConfigurationError):
            LVEnsembleResult.concatenate([opinion, catalysis])

    def test_to_run_results_rejected_for_generic_scenarios(self):
        (result,) = run_scenario_members(
            [SweepMember(PARAMS, (30, 20, 15), 4, scenario="opinion3")], [1]
        )
        with pytest.raises(InvalidConfigurationError):
            result.to_run_results()

    def test_store_round_trip_is_bitwise(self):
        member = SweepMember(CAT_PARAMS, (30, 20, 60), 12, scenario="catalysis")
        (result,) = run_scenario_members([member], [99])
        restored = ensemble_from_payload(ensemble_to_payload(result))
        assert restored.scenario == "catalysis"
        assert restored.initial_counts == (30, 20, 60)
        _assert_results_bitwise_equal(result, restored)
        assert np.array_equal(result.good_events, restored.good_events)

    def test_chunk_keys_fold_in_the_scenario(self):
        common = dict(
            params=PARAMS,
            counts=(30, 20, 15),
            num_replicates=10,
            seed=7,
            max_events=1000,
            backend="exact",
            tau_epsilon=0.03,
        )
        assert chunk_key(scenario="opinion3", **common) != chunk_key(
            scenario="catalysis", **common
        )
        # None means the default family — same key as naming it explicitly.
        two_species = dict(common, counts=(30, 20))
        assert chunk_key(scenario=None, **two_species) == chunk_key(
            scenario="lv2", **two_species
        )
