"""Tests for :mod:`repro.store` — keys, journal, serialisation, and caching.

The resume *determinism* contract (kill → resume → bitwise-identical) has its
own module, ``test_resume_determinism.py``; this one covers the store's
building blocks and the schedulers' cache-first integration.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.config import ExperimentResult
from repro.experiments.registry import experiment_run_key, run_experiment
from repro.experiments.scheduler import (
    SweepScheduler,
    configure_default_scheduler,
    get_default_scheduler,
)
from repro.experiments.sweep import SweepTask
from repro.lv.params import LVParams
from repro.lv.state import LVState
from repro.store import (
    RESULT_SCHEMA_VERSION,
    ChunkJournal,
    ExperimentStore,
    chunk_key,
    config_hash,
    ensemble_from_payload,
    ensemble_to_payload,
    run_key,
    scheduler_fingerprint,
)

ARRAY_FIELDS = (
    "final_x0",
    "final_x1",
    "total_events",
    "termination_codes",
    "births",
    "deaths",
    "interspecific_events",
    "intraspecific_events",
    "bad_noncompetitive_events",
    "good_events",
    "noise_individual",
    "noise_competitive",
    "max_total_population",
    "min_gap_seen",
    "hit_tie",
)


def assert_bitwise_equal(first, second):
    """Every result array identical in values *and* dtype."""
    for name in ARRAY_FIELDS:
        left, right = getattr(first, name), getattr(second, name)
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right), name
    assert (first.leap_events is None) == (second.leap_events is None)
    if first.leap_events is not None:
        assert np.array_equal(first.leap_events, second.leap_events)
    assert first.params == second.params
    assert first.initial_state == second.initial_state


@pytest.fixture
def task(sd_params):
    return SweepTask(sd_params, LVState(24, 16), 60, seed=11, label="store-task")


class TestKeys:
    def test_chunk_key_is_stable(self, sd_params):
        kwargs = dict(
            params=sd_params,
            counts=(20, 12),
            num_replicates=64,
            seed=123,
            max_events=10_000,
            backend="exact",
            tau_epsilon=0.03,
        )
        assert chunk_key(**kwargs) == chunk_key(**kwargs)

    def test_chunk_key_covers_result_affecting_inputs(self, sd_params, nsd_params):
        base = dict(
            params=sd_params,
            counts=(20, 12),
            num_replicates=64,
            seed=123,
            max_events=10_000,
            backend="exact",
            tau_epsilon=0.03,
        )
        reference = chunk_key(**base)
        assert chunk_key(**{**base, "seed": 124}) != reference
        assert chunk_key(**{**base, "num_replicates": 65}) != reference
        assert chunk_key(**{**base, "counts": (12, 20)}) != reference
        assert chunk_key(**{**base, "max_events": 9_999}) != reference
        assert chunk_key(**{**base, "params": nsd_params}) != reference
        assert chunk_key(**{**base, "backend": "tau"}) != reference
        assert chunk_key(**{**base, "collect": "win"}) != reference

    def test_tau_epsilon_keys_only_tau_chunks(self, sd_params):
        base = dict(
            params=sd_params,
            counts=(20, 12),
            num_replicates=64,
            seed=123,
            max_events=10_000,
        )
        exact_a = chunk_key(**base, backend="exact", tau_epsilon=0.03)
        exact_b = chunk_key(**base, backend="exact", tau_epsilon=0.05)
        assert exact_a == exact_b
        tau_a = chunk_key(**base, backend="tau", tau_epsilon=0.03)
        tau_b = chunk_key(**base, backend="tau", tau_epsilon=0.05)
        assert tau_a != tau_b

    def test_run_key_layered_fields(self):
        fingerprint = scheduler_fingerprint(SweepScheduler())
        config = config_hash("quick", fingerprint)
        reference = run_key(experiment_id="FIG-GAP", config=config, seed_root=0)
        assert run_key(experiment_id="FIG-GAP", config=config, seed_root=0) == reference
        assert run_key(experiment_id="FIG-GAP", config=config, seed_root=1) != reference
        assert run_key(experiment_id="T1R2", config=config, seed_root=0) != reference
        assert (
            run_key(
                experiment_id="FIG-GAP",
                config=config,
                seed_root=0,
                schema_version=RESULT_SCHEMA_VERSION + 1,
            )
            != reference
        )

    def test_fingerprint_excludes_execution_only_knobs(self):
        base = scheduler_fingerprint(SweepScheduler())
        assert scheduler_fingerprint(SweepScheduler(jobs=2)) == base
        assert scheduler_fingerprint(SweepScheduler(sweep_batch=64)) == base
        assert scheduler_fingerprint(SweepScheduler(compaction_fraction=None)) == base
        assert scheduler_fingerprint(SweepScheduler(batch_size=64)) != base
        assert scheduler_fingerprint(SweepScheduler(backend="tau")) != base

    def test_fingerprint_covers_precision_target(self):
        from repro.analysis.statistics import PrecisionTarget

        base = scheduler_fingerprint(SweepScheduler())
        adaptive = scheduler_fingerprint(
            SweepScheduler(precision=PrecisionTarget(ci_half_width=0.02))
        )
        assert adaptive != base


class TestSerialisation:
    def test_round_trip_is_bitwise(self, task):
        result = SweepScheduler().run_sweep([task])[0]
        payload = json.loads(json.dumps(ensemble_to_payload(result)))
        restored = ensemble_from_payload(payload)
        assert_bitwise_equal(result, restored)

    def test_tau_round_trip_keeps_leap_events(self, sd_params):
        tau_task = SweepTask(
            sd_params, LVState(30_000, 29_000), 4, seed=3, backend="tau"
        )
        result = SweepScheduler(backend="tau").run_sweep([tau_task])[0]
        assert result.leap_events is not None
        restored = ensemble_from_payload(
            json.loads(json.dumps(ensemble_to_payload(result)))
        )
        assert_bitwise_equal(result, restored)

    def test_schema_mismatch_is_rejected(self, task):
        from repro.exceptions import StoreError

        result = SweepScheduler().run_sweep([task])[0]
        payload = ensemble_to_payload(result)
        payload["schema"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(StoreError):
            ensemble_from_payload(payload)


class TestChunkJournal:
    def test_append_get_reopen(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ChunkJournal(path)
        journal.append("a", {"value": 1}, label="first")
        journal.append("b", {"value": 2})
        assert journal.get("a")["payload"] == {"value": 1}
        assert journal.get("a")["label"] == "first"
        journal.close()
        reopened = ChunkJournal(path)
        assert len(reopened) == 2
        assert reopened.get("b")["payload"] == {"value": 2}
        assert reopened.get("missing") is None

    def test_truncated_tail_is_recovered(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ChunkJournal(path)
        journal.append("a", {"value": 1})
        journal.append("b", {"value": 2})
        journal.close()
        # Simulate a kill mid-write: chop the final record in half.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])
        recovered = ChunkJournal(path)
        assert "a" in recovered
        assert "b" not in recovered
        # Appending after recovery must not corrupt the file.
        recovered.append("c", {"value": 3})
        recovered.close()
        final = ChunkJournal(path)
        assert set(final.keys()) == {"a", "c"}
        assert final.get("c")["payload"] == {"value": 3}

    def test_last_write_wins_per_key(self, tmp_path):
        journal = ChunkJournal(tmp_path / "journal.jsonl")
        journal.append("a", {"value": 1})
        journal.append("a", {"value": 2})
        assert journal.get("a")["payload"] == {"value": 2}

    def test_records_carry_verifiable_checksums(self, tmp_path):
        from repro.store.journal import record_checksum

        journal = ChunkJournal(tmp_path / "journal.jsonl")
        journal.append("a", {"value": 1}, label="first")
        record = journal.get("a")
        assert record["checksum"] == record_checksum(record)

    def test_legacy_records_without_checksum_are_accepted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        legacy = {"key": "old", "payload": {"value": 7}}
        path.write_bytes((json.dumps(legacy) + "\n").encode())
        journal = ChunkJournal(path)
        assert journal.get("old")["payload"] == {"value": 7}

    def _corrupt_record(self, path, key):
        """Flip one payload character of *key*'s record without breaking framing."""
        lines = path.read_bytes().splitlines(keepends=True)
        for position, line in enumerate(lines):
            record = json.loads(line)
            if record["key"] == key:
                marker = line.index(b'"payload"') + len(b'"payload"')
                target = next(
                    index
                    for index in range(marker, len(line))
                    if chr(line[index]).isalnum()
                )
                byte = line[target : target + 1]
                replacement = b"1" if byte != b"1" else b"2"
                if byte.isalpha():
                    replacement = b"x" if byte != b"x" else b"y"
                lines[position] = line[:target] + replacement + line[target + 1 :]
                break
        path.write_bytes(b"".join(lines))

    def test_mid_file_corruption_keeps_later_records(self, tmp_path):
        """One flipped bit never costs the intact records after it."""
        path = tmp_path / "journal.jsonl"
        journal = ChunkJournal(path)
        for key in ("a", "b", "c"):
            journal.append(key, {"value": key * 3})
        journal.close()
        self._corrupt_record(path, "b")
        reopened = ChunkJournal(path)
        assert reopened.get("b") is None  # detected, not replayed
        assert reopened.get("a")["payload"] == {"value": "aaa"}
        assert reopened.get("c")["payload"] == {"value": "ccc"}

    def test_corruption_heals_to_the_quarantine_sidecar_on_append(self, tmp_path):
        from repro.store import quarantine_path

        path = tmp_path / "journal.jsonl"
        journal = ChunkJournal(path)
        for key in ("a", "b", "c"):
            journal.append(key, {"value": key})
        journal.close()
        self._corrupt_record(path, "b")
        healing = ChunkJournal(path)
        healing.append("d", {"value": "d"})  # first append triggers the heal
        assert healing.healed_count == 1
        healing.close()
        sidecar = quarantine_path(path)
        assert sidecar.exists()
        entry = json.loads(sidecar.read_text().splitlines()[0])
        assert entry["key"] == "b"
        assert entry["reason"] == "checksum mismatch"
        # The healed journal holds only intact lines and stays fully valid.
        from repro.store.journal import _classify_line

        final = ChunkJournal(path)
        assert set(final.keys()) == {"a", "c", "d"}
        for raw in path.read_bytes().splitlines(keepends=True):
            _, reason = _classify_line(raw)
            assert reason is None

    def test_read_only_lookups_never_mutate_the_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ChunkJournal(path)
        for key in ("a", "b"):
            journal.append(key, {"value": key})
        journal.close()
        self._corrupt_record(path, "a")
        damaged = path.read_bytes()
        reader = ChunkJournal(path)
        assert reader.get("a") is None
        assert reader.get("b") is not None
        assert path.read_bytes() == damaged  # heal only runs on the append path

    def test_corruption_arriving_after_open_is_caught_on_lookup(self, tmp_path):
        """Lookups re-verify checksums, so post-scan damage is never replayed."""
        path = tmp_path / "journal.jsonl"
        journal = ChunkJournal(path)
        journal.append("a", {"value": 1})
        journal.close()
        reader = ChunkJournal(path)
        assert reader.get("a") is not None
        self._corrupt_record(path, "a")
        assert reader.get("a") is None

    def test_stale_view_never_truncates_intact_records(self, tmp_path):
        """A journal indexed before the file grew re-scans instead of clobbering."""
        path = tmp_path / "journal.jsonl"
        stale = ChunkJournal(path)  # scans the (empty) file now
        writer = ChunkJournal(path)
        writer.append("a", {"value": 1})
        writer.append("b", {"value": 2})
        writer.close()
        stale.append("c", {"value": 3})  # must not truncate a/b
        stale.close()
        final = ChunkJournal(path)
        assert set(final.keys()) == {"a", "b", "c"}
        assert final.get("a")["payload"] == {"value": 1}
        assert final.get("c")["payload"] == {"value": 3}


class TestVerifyJournal:
    def _journal_with(self, tmp_path, keys):
        path = tmp_path / "journal.jsonl"
        journal = ChunkJournal(path)
        for key in keys:
            journal.append(key, {"value": key})
        journal.close()
        return path

    def test_clean_journal_verifies_ok(self, tmp_path):
        from repro.store import verify_journal

        path = self._journal_with(tmp_path, ["a", "b"])
        report = verify_journal(path)
        assert report.ok
        assert report.intact_records == 2
        assert report.summary() == "2 intact record(s)"

    def test_missing_journal_verifies_as_empty(self, tmp_path):
        from repro.store import verify_journal

        report = verify_journal(tmp_path / "journal.jsonl")
        assert report.ok
        assert report.intact_records == 0

    def test_corruption_is_reported_with_key_and_offset(self, tmp_path):
        from repro.store import verify_journal

        path = self._journal_with(tmp_path, ["a", "b", "c"])
        TestChunkJournal._corrupt_record(self, path, "b")
        report = verify_journal(path)
        assert not report.ok
        (issue,) = report.issues
        assert issue.key == "b"
        assert issue.reason == "checksum mismatch"
        first_line_length = len(path.read_bytes().splitlines(keepends=True)[0])
        assert issue.offset == first_line_length
        assert "1 corrupt record(s)" in report.summary()
        # Verification is read-only: the bytes are untouched.
        assert len(verify_journal(path).issues) == 1

    def test_torn_tail_is_noted_but_not_a_failure(self, tmp_path):
        from repro.store import verify_journal

        path = self._journal_with(tmp_path, ["a", "b"])
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])
        report = verify_journal(path)
        assert report.ok
        assert report.intact_records == 1
        assert report.torn_tail_bytes > 0
        assert "torn tail" in report.summary()


class TestExperimentStore:
    def test_writer_lock_enforces_one_live_store(self, tmp_path):
        pytest.importorskip("fcntl")
        from repro.exceptions import StoreError

        first = ExperimentStore(tmp_path)
        with pytest.raises(StoreError):
            ExperimentStore(tmp_path)
        first.close()
        second = ExperimentStore(tmp_path)  # released lock can be retaken
        second.close()

    def test_lock_released_despite_warm_worker_pool(self, tmp_path, task):
        """Forked pool workers must not inherit (and pin) the writer lock."""
        pytest.importorskip("fcntl")
        store = ExperimentStore(tmp_path)
        scheduler = SweepScheduler(jobs=2, batch_size=16, sweep_batch=16, store=store)
        try:
            scheduler.run_sweep([task])  # starts the pool while locked
            store.close()
            reopened = ExperimentStore(tmp_path)  # pool still warm: must not raise
            reopened.close()
        finally:
            scheduler.shutdown()

    def test_chunk_miss_then_hit(self, tmp_path, task):
        store = ExperimentStore(tmp_path)
        scheduler = SweepScheduler(store=store)
        first = scheduler.run_sweep([task])[0]
        assert store.stats.chunk_writes == 1
        again = SweepScheduler(store=store).run_sweep([task])[0]
        assert store.stats.chunk_hits == 1
        assert store.stats.events_replayed > 0
        assert_bitwise_equal(first, again)

    def test_replayed_events_not_counted_as_executed(self, tmp_path, task):
        store = ExperimentStore(tmp_path)
        warm = SweepScheduler(store=store)
        warm.run_sweep([task])
        assert warm.events_executed > 0 and warm.events_replayed == 0
        cold = SweepScheduler(store=store)
        cold.run_sweep([task])
        assert cold.events_executed == 0
        assert cold.events_replayed == warm.events_executed

    def test_cache_shared_between_batch_and_sweep_paths(self, tmp_path, sd_params):
        """run_ensembles and run_sweep share one key space (same chunk unit)."""
        store = ExperimentStore(tmp_path)
        scheduler = SweepScheduler(store=store)
        merged = scheduler.run_ensembles(sd_params, LVState(24, 16), 60, rng=11)
        hit = SweepScheduler(store=store).run_sweep(
            [SweepTask(sd_params, LVState(24, 16), 60, seed=11)]
        )[0]
        assert store.stats.chunk_hits == 1
        assert_bitwise_equal(merged, hit)

    def test_run_tier_round_trip(self, tmp_path):
        store = ExperimentStore(tmp_path)
        result = ExperimentResult(
            identifier="T1R2",
            title="t",
            paper_claim="c",
            scale="quick",
            seed=0,
            parameters={"n": 8},
            rows=[{"n": 8, "rho": 0.5}],
            findings=["f"],
            shape_matches_paper=True,
        )
        store.put_run("k", result)
        loaded = store.get_run("k")
        assert loaded == result
        assert store.get_run("unknown") is None

    def test_corrupt_run_entry_is_a_miss(self, tmp_path):
        store = ExperimentStore(tmp_path)
        (tmp_path / "runs").mkdir(exist_ok=True)
        (tmp_path / "runs" / "bad.json").write_text("{not json")
        assert store.get_run("bad") is None

    def test_run_experiment_resume_serves_from_cache(self, tmp_path):
        store = ExperimentStore(tmp_path)
        previous = get_default_scheduler()
        configure_default_scheduler(store=store)
        try:
            first = run_experiment(
                "FIG-ODE", scale="quick", seed=3, store=store, resume=True
            )
            assert store.stats.run_hits == 0
            executed = get_default_scheduler().events_executed
            assert executed > 0
            second = run_experiment(
                "FIG-ODE", scale="quick", seed=3, store=store, resume=True
            )
            assert store.stats.run_hits == 1
            assert get_default_scheduler().events_executed == executed
            assert first.to_dict() == second.to_dict()
        finally:
            configure_default_scheduler(store=previous.store)

    def test_run_key_changes_with_scheduler_config(self, tmp_path):
        previous = get_default_scheduler()
        try:
            configure_default_scheduler(backend="exact")
            exact_key = experiment_run_key("FIG-ODE", scale="quick", seed=3)
            configure_default_scheduler(backend="tau")
            tau_key = experiment_run_key("FIG-ODE", scale="quick", seed=3)
            assert exact_key != tau_key
        finally:
            configure_default_scheduler(
                backend=previous.backend, tau_epsilon=previous.tau_epsilon
            )

    def test_hand_corrupted_chunk_recomputes_only_itself(self, tmp_path, sd_params):
        """Acceptance gate: corrupt one record by hand, the next run heals it."""
        tasks = [
            SweepTask(sd_params, LVState(40, 24), 60, seed=1),
            SweepTask(sd_params, LVState(33, 31), 60, seed=2),
            SweepTask(sd_params, LVState(36, 28), 60, seed=3),
        ]
        store = ExperimentStore(tmp_path)
        reference = SweepScheduler(store=store).run_sweep(tasks)
        victim = list(store._journal.keys())[1]
        store.close()
        TestChunkJournal._corrupt_record(self, tmp_path / "journal.jsonl", victim)

        store = ExperimentStore(tmp_path)
        scheduler = SweepScheduler(store=store)
        recovered = scheduler.run_sweep(tasks)
        # Exactly the damaged chunk recomputed; the other two replayed.
        assert store.stats.chunk_hits == 2
        assert store.stats.chunk_misses == 1
        assert store.stats.chunk_writes == 1
        assert store.stats.chunks_quarantined == 1
        assert "1 chunk(s) quarantined" in store.stats.summary()
        store.close()
        for expected, actual in zip(reference, recovered):
            assert_bitwise_equal(expected, actual)
        # The healed journal is fully intact again; the sidecar kept the key.
        from repro.store import quarantine_path, verify_journal

        assert verify_journal(tmp_path / "journal.jsonl").ok
        entry = json.loads(
            quarantine_path(tmp_path / "journal.jsonl").read_text().splitlines()[0]
        )
        assert entry["key"] == victim

    def test_adaptive_sweep_replays_rungs(self, tmp_path, sd_params):
        from repro.analysis.statistics import PrecisionTarget

        target = PrecisionTarget(
            ci_half_width=0.08, min_replicates=64, max_replicates=256
        )
        task = SweepTask(sd_params, LVState(40, 24), 400, seed=9)
        store = ExperimentStore(tmp_path)
        first = SweepScheduler(store=store).run_sweep_adaptive([task], target=target)
        writes = store.stats.chunk_writes
        assert writes > 0
        again = SweepScheduler(store=store).run_sweep_adaptive([task], target=target)
        assert store.stats.chunk_writes == writes  # nothing recomputed
        assert store.stats.chunk_hits >= writes
        assert_bitwise_equal(first[0], again[0])
