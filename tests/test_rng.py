"""Tests for the RNG utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import (
    as_generator,
    interleave_seeds,
    spawn_generators,
    spawn_seeds,
    stable_seed,
)


class TestAsGenerator:
    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert as_generator(7).random() == as_generator(7).random()

    def test_different_seeds_differ(self):
        assert as_generator(7).random() != as_generator(8).random()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(5)
        first = as_generator(sequence)
        assert isinstance(first, np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            as_generator(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count_respected(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_reproducible_from_int_seed(self):
        first = [g.random() for g in spawn_generators(3, 4)]
        second = [g.random() for g in spawn_generators(3, 4)]
        assert first == second

    def test_children_are_independent(self):
        values = [g.random() for g in spawn_generators(3, 10)]
        assert len(set(values)) == 10

    def test_zero_count(self):
        assert spawn_generators(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_from_existing_generator(self):
        generator = np.random.default_rng(9)
        children = spawn_generators(generator, 3)
        assert len(children) == 3


class TestSpawnSeeds:
    def test_seeds_are_ints(self):
        seeds = spawn_seeds(11, 6)
        assert len(seeds) == 6
        assert all(isinstance(seed, int) and seed >= 0 for seed in seeds)

    def test_reproducible(self):
        assert spawn_seeds(11, 6) == spawn_seeds(11, 6)

    def test_seeds_are_distinct(self):
        seeds = spawn_seeds(11, 64)
        assert len(set(seeds)) == 64

    def test_different_roots_give_different_seeds(self):
        assert spawn_seeds(11, 6) != spawn_seeds(12, 6)

    def test_seeds_fit_in_63_bits(self):
        assert all(0 <= seed < 2**63 for seed in spawn_seeds(0, 32))

    def test_zero_count(self):
        assert spawn_seeds(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_accepts_seed_sequence(self):
        sequence = np.random.SeedSequence(13)
        assert spawn_seeds(sequence, 4) == spawn_seeds(np.random.SeedSequence(13), 4)

    def test_generator_input_keeps_spawning_fresh_seeds(self):
        generator = np.random.default_rng(9)
        first = spawn_seeds(generator, 4)
        second = spawn_seeds(generator, 4)
        assert set(first).isdisjoint(second)

    def test_child_streams_are_independent(self):
        """Generators built from spawned seeds must not share their streams."""
        values = [
            as_generator(seed).random() for seed in spawn_seeds(7, 16)
        ]
        assert len(set(values)) == 16


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("exp", 128, 4) == stable_seed("exp", 128, 4)

    def test_sensitive_to_parts(self):
        assert stable_seed("exp", 128, 4) != stable_seed("exp", 128, 5)
        assert stable_seed("exp", 128) != stable_seed("other", 128)

    def test_requires_parts(self):
        with pytest.raises(ValueError):
            stable_seed()

    def test_fits_in_63_bits(self):
        assert 0 <= stable_seed("x", 1) < 2**63


class TestInterleaveSeeds:
    def test_pairs_labels_with_seeds(self):
        mapping = interleave_seeds([1, 2], ["a", "b"])
        assert mapping == {"a": 1, "b": 2}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            interleave_seeds([1, 2], ["a"])
