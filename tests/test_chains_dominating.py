"""Tests for the dominating chain, the pseudo-coupling, and first-step analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chains.dominating import PseudoCoupling, check_domination, compare_domination
from repro.chains.first_step import exact_majority_probability, exact_win_probability_grid
from repro.consensus.exact import proportional_win_probability
from repro.exceptions import AbsorptionError, ModelError
from repro.lv.params import CompetitionMechanism, LVParams
from repro.lv.state import LVState


def fast_params(self_destructive: bool = True) -> LVParams:
    """LV rates whose dominating chain has no uphill stretch (fast to simulate)."""
    mechanism = (
        CompetitionMechanism.SELF_DESTRUCTIVE
        if self_destructive
        else CompetitionMechanism.NON_SELF_DESTRUCTIVE
    )
    return LVParams(beta=0.25, delta=0.25, alpha0=1.0, alpha1=1.0, mechanism=mechanism)


class TestCheckDomination:
    def test_holds_for_neutral_sd(self, sd_params):
        report = check_domination(sd_params, max_count=40)
        assert report.holds
        assert report.states_checked == 40 * 41 // 2

    def test_holds_for_neutral_nsd(self, nsd_params):
        assert check_domination(nsd_params, max_count=40).holds

    def test_holds_for_asymmetric_rates(self):
        params = LVParams(beta=0.3, delta=1.7, alpha0=0.2, alpha1=1.3)
        assert check_domination(params, max_count=30).holds

    def test_holds_without_death_reactions(self):
        params = LVParams.self_destructive(beta=1.0, delta=0.0, alpha=1.0)
        assert check_domination(params, max_count=30).holds

    def test_requires_gamma_zero(self):
        params = LVParams.self_destructive(beta=1.0, delta=1.0, alpha=1.0, gamma=1.0)
        with pytest.raises(ModelError):
            check_domination(params)


class TestDominationProbabilities:
    def test_bad_event_probability_matches_lemma_12(self, sd_params):
        """P(a, b) = (delta*a + beta*b) / phi(a, b) and is below p(min(a,b))."""
        from repro.chains.nice import lv_dominating_birth_death
        from repro.lv.simulator import LVJumpChainSimulator

        simulator = LVJumpChainSimulator(sd_params)
        chain = lv_dominating_birth_death(
            beta=sd_params.beta,
            delta=sd_params.delta,
            alpha0=sd_params.alpha0,
            alpha1=sd_params.alpha1,
        )
        for a, b in [(1, 1), (5, 3), (10, 10), (40, 7), (100, 1)]:
            state = LVState(a, b)
            phi = sd_params.total_propensity(a, b)
            expected = (sd_params.delta * max(a, b) + sd_params.beta * min(a, b)) / phi
            assert simulator.bad_noncompetitive_probability(state) == pytest.approx(expected)
            assert simulator.bad_noncompetitive_probability(state) <= chain.birth_probability(
                min(a, b)
            ) + 1e-12

    def test_good_event_probability_above_q(self, nsd_params):
        from repro.chains.nice import lv_dominating_birth_death
        from repro.lv.simulator import LVJumpChainSimulator

        simulator = LVJumpChainSimulator(nsd_params)
        chain = lv_dominating_birth_death(
            beta=nsd_params.beta,
            delta=nsd_params.delta,
            alpha0=nsd_params.alpha0,
            alpha1=nsd_params.alpha1,
        )
        for a, b in [(2, 1), (8, 8), (30, 4)]:
            state = LVState(a, b)
            assert simulator.good_event_probability(state) >= chain.death_probability(
                min(a, b)
            ) - 1e-12

    def test_zero_when_consensus_reached(self, sd_params):
        from repro.lv.simulator import LVJumpChainSimulator

        simulator = LVJumpChainSimulator(sd_params)
        assert simulator.bad_noncompetitive_probability(LVState(5, 0)) == 0.0
        assert simulator.good_event_probability(LVState(0, 5)) == 0.0


class TestPseudoCoupling:
    def test_invariants_hold_on_sampled_paths(self):
        coupling = PseudoCoupling(fast_params(self_destructive=True))
        for seed in range(5):
            trace = coupling.run(LVState(20, 12), rng=seed)
            assert trace.invariant_held
            assert trace.single_chain_extinct
            assert trace.bad_events <= trace.births

    def test_invariants_hold_for_nsd(self):
        coupling = PseudoCoupling(fast_params(self_destructive=False))
        trace = coupling.run(LVState(15, 15), rng=1)
        assert trace.invariant_held

    def test_requires_interspecific_competition(self):
        with pytest.raises(ModelError):
            PseudoCoupling(LVParams.self_destructive(beta=1.0, delta=1.0, alpha=0.0, gamma=1.0))

    def test_rejects_intraspecific(self):
        with pytest.raises(ModelError):
            PseudoCoupling(LVParams.self_destructive(beta=1.0, delta=1.0, alpha=1.0, gamma=0.5))


class TestCompareDomination:
    def test_two_species_quantities_are_dominated(self):
        report = compare_domination(
            fast_params(self_destructive=True), LVState(40, 24), num_runs=80, rng=9
        )
        assert report.time_dominated
        assert report.bad_events_dominated
        assert report.mean_consensus_time <= report.mean_extinction_time

    def test_invalid_runs_rejected(self, sd_params):
        with pytest.raises(ValueError):
            compare_domination(sd_params, LVState(10, 5), num_runs=0)


class TestFirstStepExact:
    def test_theorem_20_sd_balanced(self, sd_balanced_params):
        """rho = a/(a+b) for SD with gamma0 = gamma1 = alpha (dead heats as 1/2)."""
        for a, b in [(3, 2), (6, 4), (9, 3), (7, 7)]:
            result = exact_majority_probability(
                sd_balanced_params, (a, b), max_count=3 * (a + b), dead_heat_value=0.5
            )
            assert result.win_probability == pytest.approx(a / (a + b), abs=1e-6)

    def test_theorem_20_strict_definition_is_below_proportion(self, sd_balanced_params):
        result = exact_majority_probability(sd_balanced_params, (6, 4), max_count=30)
        assert result.win_probability < 0.6

    def test_theorem_23_nsd_balanced(self, nsd_balanced_params):
        """rho = a/(a+b) for NSD with gamma = 2*alpha; no dead-heat convention needed."""
        for a, b in [(3, 2), (6, 4), (9, 3)]:
            result = exact_majority_probability(nsd_balanced_params, (a, b), max_count=3 * (a + b))
            assert result.win_probability == pytest.approx(a / (a + b), abs=1e-6)

    def test_rate_independence_of_exact_formula(self):
        """The a/(a+b) identity holds regardless of beta and delta (Theorems 20/23)."""
        for beta, delta in [(0.0, 0.0), (2.0, 0.5), (0.3, 3.0)]:
            params = LVParams.non_self_destructive(beta=beta, delta=delta, alpha=1.0, gamma=2.0)
            result = exact_majority_probability(params, (8, 4), max_count=40)
            assert result.win_probability == pytest.approx(2 / 3, abs=1e-6)

    def test_unbalanced_rates_deviate_from_proportion(self):
        """Without the balanced-rate condition the proportional rule fails."""
        params = LVParams.self_destructive(beta=1.0, delta=1.0, alpha=1.0, gamma=0.5)
        result = exact_majority_probability(params, (6, 4), max_count=40, dead_heat_value=0.5)
        assert result.win_probability != pytest.approx(0.6, abs=0.01)

    def test_interspecific_only_beats_proportion(self, sd_params):
        """With interspecific competition only, the majority does far better than a/(a+b)."""
        result = exact_majority_probability(sd_params, (15, 5), max_count=60)
        assert result.win_probability > proportional_win_probability((15, 5)) + 0.1

    def test_grid_boundaries(self, sd_params):
        grid = exact_win_probability_grid(sd_params, 6)
        assert grid[0, 0] == 0.0
        assert grid[3, 0] == 1.0
        assert grid[0, 3] == 0.0
        assert np.all((grid >= 0.0) & (grid <= 1.0))

    def test_monotone_in_first_species_count(self, sd_params):
        grid = exact_win_probability_grid(sd_params, 10)
        # For a fixed minority count, adding majority individuals can only help.
        for b in range(1, 6):
            column = grid[1:, b]
            assert np.all(np.diff(column) >= -1e-9)

    def test_symmetry_for_neutral_systems(self, nsd_params):
        # Under NSD competition no dead heat is possible, so by neutrality the
        # win probabilities from mirrored states must sum to exactly one.
        grid = exact_win_probability_grid(nsd_params, 8)
        for a in range(1, 9):
            for b in range(1, 9):
                assert grid[a, b] + grid[b, a] == pytest.approx(1.0, abs=1e-8)

    def test_mirrored_states_account_for_dead_heats(self, sd_params):
        # Under SD competition the missing mass in mirrored states is exactly
        # the dead-heat probability, which the 1/2-convention splits evenly.
        strict = exact_win_probability_grid(sd_params, 8, dead_heat_value=0.0)
        half = exact_win_probability_grid(sd_params, 8, dead_heat_value=0.5)
        for a in range(1, 9):
            for b in range(1, 9):
                assert half[a, b] + half[b, a] == pytest.approx(1.0, abs=1e-8)
                assert strict[a, b] <= half[a, b] + 1e-12

    def test_invalid_dead_heat_value(self, sd_params):
        with pytest.raises(AbsorptionError):
            exact_win_probability_grid(sd_params, 5, dead_heat_value=1.5)

    def test_initial_state_must_fit_truncation(self, sd_params):
        with pytest.raises(AbsorptionError):
            exact_majority_probability(sd_params, (10, 5), max_count=8)

    def test_agrees_with_monte_carlo(self, sd_params):
        from repro.consensus.estimator import estimate_majority_probability

        exact = exact_majority_probability(sd_params, (12, 6), max_count=60).win_probability
        estimate = estimate_majority_probability(sd_params, LVState(12, 6), num_runs=600, rng=21)
        assert estimate.success.lower - 0.03 <= exact <= estimate.success.upper + 0.03
