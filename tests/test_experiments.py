"""Tests for the experiment harness (registry, workloads, results, report)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentResult, ExperimentSpec, SCALES
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments, run_experiment
from repro.experiments.report import render_report
from repro.experiments.runner import load_results, run_all, save_results
from repro.experiments.workloads import (
    consortium_scenarios,
    gap_grid,
    noisy_sensor_split,
    population_grid,
    state_with_gap,
)


EXPECTED_IDS = {
    "T1R1-SD",
    "T1R1-NSD",
    "T1R2",
    "T1R3",
    "T1R4",
    "T1R5",
    "FIG-GAP",
    "FIG-THRESH",
    "FIG-THRESH-XL",
    "FIG-TIME",
    "FIG-BAD",
    "FIG-NOISE",
    "FIG-ODE",
    "FIG-DOM",
    "SCEN-KOP",
    "SCEN-CAT",
}


class TestRegistry:
    def test_all_design_doc_experiments_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_list_is_sorted_and_complete(self):
        specs = list_experiments()
        assert [spec.identifier for spec in specs] == sorted(EXPECTED_IDS)

    def test_get_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("T1R9")

    def test_specs_have_claims_and_titles(self):
        for spec in list_experiments():
            assert spec.title
            assert spec.paper_claim

    def test_invalid_scale_rejected(self):
        spec = get_experiment("T1R3")
        with pytest.raises(ExperimentError):
            spec.run(scale="enormous")

    def test_scales_constant(self):
        assert SCALES == ("quick", "full")


class TestWorkloads:
    def test_population_grid_scales(self):
        quick = population_grid("quick")
        full = population_grid("full")
        assert quick == [64, 128, 256]
        assert len(full) > len(quick)
        assert all(b == 2 * a for a, b in zip(full, full[1:]))

    def test_gap_grid_is_increasing_and_bounded(self):
        grid = gap_grid(256)
        assert grid == sorted(set(grid))
        assert grid[0] >= 1
        assert grid[-1] <= 254

    def test_gap_grid_validation(self):
        with pytest.raises(ExperimentError):
            gap_grid(4)
        with pytest.raises(ExperimentError):
            gap_grid(256, max_fraction=0.0)

    def test_state_with_gap_respects_parity(self):
        for n, gap in [(128, 25), (128, 24), (65, 2), (65, 64), (64, 63), (64, 200)]:
            state = state_with_gap(n, gap)
            assert state.total == n
            assert abs(state.abs_gap - min(gap, n)) <= 1

    def test_state_with_gap_validation(self):
        with pytest.raises(ExperimentError):
            state_with_gap(0, 2)

    def test_consortium_scenarios(self):
        scenarios = consortium_scenarios()
        assert len(scenarios) == 3
        names = {scenario.name for scenario in scenarios}
        assert {"strong-sensor", "weak-sensor", "borderline-sensor"} == names
        for scenario in scenarios:
            state = scenario.sample_initial_state(rng=0)
            assert state.total == scenario.population_size
            assert state.x0 > 0 and state.x1 > 0

    def test_noisy_sensor_split(self):
        state = noisy_sensor_split(200, 30, 5.0, rng=1)
        assert state.total == 200
        assert state.minimum > 0


class TestExperimentResult:
    def _dummy_result(self) -> ExperimentResult:
        return ExperimentResult(
            identifier="T1R9-DUMMY",
            title="Dummy",
            paper_claim="Nothing.",
            scale="quick",
            seed=0,
            parameters={"n": 64},
            rows=[{"n": 64, "value": 1.5}],
            findings=["it works"],
            shape_matches_paper=True,
        )

    def test_render_text_contains_table_and_verdict(self):
        text = self._dummy_result().render_text()
        assert "T1R9-DUMMY" in text
        assert "64" in text
        assert "MATCHES" in text

    def test_render_markdown(self):
        markdown = self._dummy_result().render_markdown()
        assert markdown.startswith("### T1R9-DUMMY")
        assert "| n | value |" in markdown

    def test_round_trip_serialisation(self):
        result = self._dummy_result()
        restored = ExperimentResult.from_dict(result.to_dict())
        assert restored == result

    def test_from_dict_missing_keys(self):
        with pytest.raises(ExperimentError):
            ExperimentResult.from_dict({"identifier": "x"})

    def test_spec_rejects_mislabelled_result(self):
        def bad_runner(scale, seed):
            result = self._dummy_result()
            result.identifier = "WRONG"
            return result

        spec = ExperimentSpec("T1R9-DUMMY", "Dummy", "claim", bad_runner)
        with pytest.raises(ExperimentError):
            spec.run()


class TestRunnerAndReport:
    def test_run_save_load_round_trip(self, tmp_path):
        results = run_all(["T1R3"], scale="quick", seed=0)
        assert len(results) == 1
        assert results[0].identifier == "T1R3"
        path = save_results(results, tmp_path / "results.json")
        restored = load_results(path)
        assert restored == results

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_results(tmp_path / "missing.json")

    def test_report_rendering(self):
        results = run_all(["FIG-NOISE"], scale="quick", seed=0)
        report = render_report(results)
        assert "# EXPERIMENTS" in report
        assert "FIG-NOISE" in report
        assert "| Experiment | Paper claim | Shape matches? |" in report


@pytest.mark.slow
class TestExperimentOutcomes:
    """End-to-end checks that the quick-scale experiments reproduce the paper's shapes.

    These are the most expensive tests in the suite (tens of seconds each);
    they are marked ``slow`` so that ``pytest -m "not slow"`` gives a fast
    development loop, while the default run still exercises them.
    """

    def test_t1r2_exactness(self):
        result = run_experiment("T1R2", scale="quick", seed=0)
        assert result.shape_matches_paper

    def test_t1r3_no_threshold(self):
        result = run_experiment("T1R3", scale="quick", seed=0)
        assert result.shape_matches_paper

    def test_t1r5_proportional(self):
        result = run_experiment("T1R5", scale="quick", seed=0)
        assert result.shape_matches_paper

    def test_fig_noise_decomposition(self):
        result = run_experiment("FIG-NOISE", scale="quick", seed=0)
        assert result.shape_matches_paper

    def test_fig_ode_contrast(self):
        result = run_experiment("FIG-ODE", scale="quick", seed=0)
        assert result.shape_matches_paper

    def test_fig_dominating(self):
        result = run_experiment("FIG-DOM", scale="quick", seed=0)
        assert result.shape_matches_paper

    def test_t1r1_sd_is_sub_polynomial(self):
        result = run_experiment("T1R1-SD", scale="quick", seed=0)
        assert result.shape_matches_paper

    def test_t1r1_nsd_is_polynomial(self):
        result = run_experiment("T1R1-NSD", scale="quick", seed=0)
        assert result.shape_matches_paper
