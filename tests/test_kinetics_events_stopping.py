"""Tests for event classification, stopping conditions and trajectories."""

from __future__ import annotations

import pytest

from repro.crn.builders import build_lv_network
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.exceptions import ModelError
from repro.kinetics.events import EventKind, classify_reaction
from repro.kinetics.stopping import (
    AnyOf,
    ConsensusReached,
    ExtinctionReached,
    MaxEvents,
    MaxTime,
    TargetCount,
)
from repro.kinetics.trajectory import Trajectory


X = Species("X")
Y = Species("Y")


class TestEventClassification:
    def test_label_prefixes(self):
        network = build_lv_network(
            beta=1, delta=1, alpha0=0.5, alpha1=0.5, gamma0=0.5, gamma1=0.5
        )
        kinds = {reaction.label: classify_reaction(reaction) for reaction in network.reactions}
        assert kinds["birth:X0"] is EventKind.BIRTH
        assert kinds["death:X1"] is EventKind.DEATH
        assert kinds["inter:X0"] is EventKind.INTERSPECIFIC
        assert kinds["intra:X1"] is EventKind.INTRASPECIFIC

    def test_structural_fallback_birth(self):
        custom = Reaction({X: 1}, {X: 2}, rate=1.0, label="custom")
        assert classify_reaction(custom) is EventKind.BIRTH

    def test_structural_fallback_death(self):
        assert classify_reaction(Reaction({X: 1}, {}, rate=1.0, label="custom")) is EventKind.DEATH

    def test_structural_fallback_interspecific(self):
        reaction = Reaction({X: 1, Y: 1}, {X: 1}, rate=1.0, label="custom")
        assert classify_reaction(reaction) is EventKind.INTERSPECIFIC

    def test_structural_fallback_intraspecific(self):
        reaction = Reaction({X: 2}, {X: 1}, rate=1.0, label="custom")
        assert classify_reaction(reaction) is EventKind.INTRASPECIFIC

    def test_other_for_no_change(self):
        reaction = Reaction({X: 1}, {X: 1}, rate=1.0, label="noop")
        assert classify_reaction(reaction) is EventKind.OTHER

    def test_kind_predicates(self):
        assert EventKind.BIRTH.is_individual
        assert EventKind.DEATH.is_individual
        assert EventKind.INTERSPECIFIC.is_competitive
        assert EventKind.INTRASPECIFIC.is_competitive
        assert not EventKind.BIRTH.is_competitive
        assert not EventKind.OTHER.is_individual


class TestStoppingConditions:
    def test_consensus_requires_distinct_species(self):
        with pytest.raises(ModelError):
            ConsensusReached(X, X)

    def test_consensus_triggers_on_extinction(self):
        condition = ConsensusReached(X, Y)
        assert condition.should_stop({X: 0, Y: 3}, time=0.0, num_events=0)
        assert condition.should_stop({X: 3, Y: 0}, time=0.0, num_events=0)
        assert not condition.should_stop({X: 1, Y: 1}, time=0.0, num_events=0)

    def test_extinction_specific_species(self):
        condition = ExtinctionReached(X)
        assert condition.should_stop({X: 0, Y: 5}, time=0.0, num_events=0)
        assert not condition.should_stop({X: 1, Y: 0}, time=0.0, num_events=0)

    def test_extinction_all_species(self):
        condition = ExtinctionReached()
        assert condition.should_stop({X: 0, Y: 0}, time=0.0, num_events=0)
        assert not condition.should_stop({X: 0, Y: 1}, time=0.0, num_events=0)

    def test_max_events(self):
        condition = MaxEvents(10)
        assert condition.should_stop({}, time=0.0, num_events=10)
        assert not condition.should_stop({}, time=0.0, num_events=9)
        with pytest.raises(ValueError):
            MaxEvents(0)

    def test_max_time(self):
        condition = MaxTime(2.5)
        assert condition.should_stop({}, time=2.5, num_events=0)
        assert not condition.should_stop({}, time=2.4, num_events=0)
        with pytest.raises(ValueError):
            MaxTime(-1.0)

    def test_target_count_above_and_below(self):
        above = TargetCount(X, 5, direction="above")
        below = TargetCount(X, 2, direction="below")
        assert above.should_stop({X: 5}, time=0.0, num_events=0)
        assert not above.should_stop({X: 4}, time=0.0, num_events=0)
        assert below.should_stop({X: 2}, time=0.0, num_events=0)
        assert not below.should_stop({X: 3}, time=0.0, num_events=0)
        with pytest.raises(ValueError):
            TargetCount(X, 1, direction="sideways")

    def test_any_of_reports_triggering_reason(self):
        condition = AnyOf([MaxEvents(5), ExtinctionReached(X)])
        assert condition.should_stop({X: 0}, time=0.0, num_events=0)
        assert condition.reason == "extinction"
        assert condition.should_stop({X: 3}, time=0.0, num_events=5)
        assert condition.reason == "max-events"
        with pytest.raises(ValueError):
            AnyOf([])


class TestTrajectory:
    def setup_method(self):
        self.network = build_lv_network(beta=1, delta=1, alpha0=0.5, alpha1=0.5)
        self.x0, self.x1 = self.network.species

    def test_begin_from_mapping(self):
        trajectory = Trajectory.begin(self.network, {self.x0: 5, self.x1: 3})
        assert trajectory.initial_state == (5, 3)
        assert trajectory.final_state == (5, 3)
        assert trajectory.num_events == 0

    def test_begin_from_vector(self):
        trajectory = Trajectory.begin(self.network, [5, 3])
        assert trajectory.initial_state == (5, 3)

    def test_record_event_updates_counts(self):
        trajectory = Trajectory.begin(self.network, (5, 3))
        trajectory.record_event(
            time=0.5, reaction_label="birth:X0", kind=EventKind.BIRTH, state=(6, 3)
        )
        assert trajectory.num_events == 1
        assert trajectory.final_state == (6, 3)
        assert trajectory.events_of_kind(EventKind.BIRTH) == 1
        assert trajectory.individual_events == 1
        assert trajectory.competitive_events == 0

    def test_steps_only_recorded_when_requested(self):
        trajectory = Trajectory.begin(self.network, (5, 3), record_steps=False)
        trajectory.record_event(
            time=0.5, reaction_label="birth:X0", kind=EventKind.BIRTH, state=(6, 3)
        )
        assert trajectory.steps == []
        with pytest.raises(ValueError):
            trajectory.times()

    def test_recorded_steps_accessible(self):
        trajectory = Trajectory.begin(self.network, (5, 3), record_steps=True)
        trajectory.record_event(
            time=0.5, reaction_label="birth:X0", kind=EventKind.BIRTH, state=(6, 3)
        )
        trajectory.record_event(
            time=0.9, reaction_label="inter:X0", kind=EventKind.INTERSPECIFIC, state=(5, 2)
        )
        assert len(trajectory) == 2
        assert trajectory.times().tolist() == [0.5, 0.9]
        assert trajectory.states().shape == (2, 2)
        assert trajectory.species_series(self.x1).tolist() == [3, 2]

    def test_count_accessor(self):
        trajectory = Trajectory.begin(self.network, (5, 3))
        assert trajectory.count(self.x0) == 5
        assert trajectory.count(self.x1, final=False) == 3

    def test_finish_sets_termination(self):
        trajectory = Trajectory.begin(self.network, (5, 3))
        assert trajectory.finish("consensus").termination == "consensus"
