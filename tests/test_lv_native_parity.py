"""Bitwise parity of the native inner-loop kernels against the numpy engines.

The contract under test — the tentpole acceptance criterion of the native
kernel — is that ``engine="numba"`` produces **bit-for-bit** the results of
``engine="numpy"`` on every code path: both collect modes, compaction
settings, event budgets, the absorbable intraspecific-only regime, the thin
scalar tail, the tau backend's exact endgame, scheduler-level ``sweep_batch``
/ ``jobs`` execution, adaptive wave boundaries, and store journals (whose
chunk keys deliberately exclude the engine).

These tests run **without numba installed**: the kernels are plain-Python
functions in the numba nopython subset, so forcing ``engine="numba"``
executes them interpreted — slower, but running the exact native algorithm
and arithmetic, which is precisely what the parity contract covers.  The
CI leg with numba installed runs the same assertions against the compiled
kernels (plus the registry-wide check in ``benchmarks/``).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.statistics import PrecisionTarget
from repro.exceptions import ExperimentError, InvalidConfigurationError
from repro.experiments.scheduler import SweepScheduler
from repro.experiments.sweep import SweepTask, execute_mega_batch, plan_members
from repro.lv import native
from repro.lv.ensemble import (
    SCALAR_FINISH_WIDTH,
    LVEnsembleSimulator,
    SweepMember,
    run_sweep_ensemble,
)
from repro.lv.native import (
    ENGINES,
    NATIVE_AVAILABLE,
    NativeEngineUnavailableError,
    capability_report,
    native_scalar_run,
    resolve_engine,
)
from repro.lv.params import LVParams
from repro.lv.simulator import LVJumpChainSimulator
from repro.lv.state import LVState
from repro.lv.tau import LVTauEnsembleSimulator, run_tau_sweep_ensemble
from repro.store import ExperimentStore

from test_store import assert_bitwise_equal


def assert_ensembles_identical(expected, actual) -> None:
    """Field-for-field bitwise equality of two ``LVEnsembleResult``s."""
    for field in dataclasses.fields(expected):
        left = getattr(expected, field.name)
        right = getattr(actual, field.name)
        if isinstance(left, np.ndarray):
            assert left.dtype == right.dtype, field.name
            assert np.array_equal(left, right), field.name
        else:
            assert left == right, field.name


def _members(sd_params, nsd_params):
    """A heterogeneous batch covering every retirement path.

    Mixed mechanisms and populations, a budget-limited member (max-events
    retirement plus mid-run scalar handoff), and an intraspecific-only
    member whose replicas can absorb at (1, 1).
    """
    gamma_only = LVParams.non_self_destructive(beta=0.0, delta=0.0, alpha=0.0, gamma=1.0)
    return [
        SweepMember(sd_params, LVState(40, 24), 90),
        SweepMember(nsd_params, LVState(33, 31), 70),
        SweepMember(sd_params, LVState(36, 28), 50, 40),
        SweepMember(gamma_only, LVState(5, 3), 40),
    ]


class TestResolveEngine:
    def test_rejects_unknown_selector(self):
        with pytest.raises(InvalidConfigurationError):
            resolve_engine("fortran")

    def test_auto_matches_availability(self):
        assert resolve_engine("auto") == ("numba" if NATIVE_AVAILABLE else "numpy")
        assert capability_report()["default_engine"] == resolve_engine("auto")

    def test_explicit_selectors_resolve_to_themselves(self):
        assert resolve_engine("numpy") == "numpy"
        assert resolve_engine("numba") == "numba"

    def test_strict_numba_requires_numba(self):
        if NATIVE_AVAILABLE:
            assert resolve_engine("numba", strict=True) == "numba"
        else:
            with pytest.raises(NativeEngineUnavailableError):
                resolve_engine("numba", strict=True)

    def test_scheduler_validates_engine_strictly(self):
        with pytest.raises(ExperimentError):
            SweepScheduler(engine="fortran")
        if not NATIVE_AVAILABLE:
            with pytest.raises(NativeEngineUnavailableError):
                SweepScheduler(engine="numba")

    def test_thin_tail_constants_agree(self):
        # native.py duplicates the handoff width to avoid a circular import;
        # the two copies must never drift apart.
        assert native._SCALAR_FINISH_WIDTH == SCALAR_FINISH_WIDTH


class TestEnsembleParity:
    @pytest.mark.parametrize("collect", ["full", "win"])
    def test_sweep_ensemble_parity(self, sd_params, nsd_params, collect):
        members = _members(sd_params, nsd_params)
        reference = run_sweep_ensemble(members, rng=7, collect=collect, engine="numpy")
        native_run = run_sweep_ensemble(members, rng=7, collect=collect, engine="numba")
        for expected, actual in zip(reference, native_run):
            assert_ensembles_identical(expected, actual)

    @pytest.mark.parametrize("compaction", [None, 0.25, 1.0])
    def test_parity_independent_of_compaction(self, sd_params, nsd_params, compaction):
        # The native kernel compacts in-pass and ignores compaction_fraction;
        # the numpy path must agree for every setting of the knob.
        members = _members(sd_params, nsd_params)
        reference = run_sweep_ensemble(
            members, rng=3, compaction_fraction=compaction, engine="numpy"
        )
        native_run = run_sweep_ensemble(
            members, rng=3, compaction_fraction=compaction, engine="numba"
        )
        for expected, actual in zip(reference, native_run):
            assert_ensembles_identical(expected, actual)

    def test_member_seeds_parity(self, sd_params, nsd_params):
        members = _members(sd_params, nsd_params)
        seeds = [11, 22, 33, 44]
        reference = run_sweep_ensemble(members, member_seeds=seeds, engine="numpy")
        native_run = run_sweep_ensemble(members, member_seeds=seeds, engine="numba")
        for expected, actual in zip(reference, native_run):
            assert_ensembles_identical(expected, actual)

    def test_ensemble_simulator_parity(self, sd_balanced_params):
        reference = LVEnsembleSimulator(sd_balanced_params, engine="numpy").run_ensemble(
            LVState(30, 18), 64, rng=9
        )
        native_run = LVEnsembleSimulator(sd_balanced_params, engine="numba").run_ensemble(
            LVState(30, 18), 64, rng=9
        )
        assert_ensembles_identical(reference, native_run)

    def test_ensemble_simulator_rejects_unknown_engine(self, sd_params):
        with pytest.raises(InvalidConfigurationError):
            LVEnsembleSimulator(sd_params, engine="fortran")


class TestScalarRunParity:
    def test_run_results_match_field_for_field(self, sd_params, nsd_balanced_params):
        for params in (sd_params, nsd_balanced_params):
            for seed in range(5):
                reference = LVJumpChainSimulator(params).run(
                    LVState(50, 30), rng=np.random.default_rng(seed)
                )
                native_result = native_scalar_run(
                    params, LVState(50, 30), np.random.default_rng(seed)
                )
                for field in dataclasses.fields(reference):
                    if field.name == "path":
                        continue  # the native runner records no path
                    assert getattr(reference, field.name) == getattr(
                        native_result, field.name
                    ), field.name

    def test_max_events_termination_matches(self, nsd_params):
        reference = LVJumpChainSimulator(nsd_params).run(
            LVState(60, 40), rng=np.random.default_rng(1), max_events=25
        )
        native_result = native_scalar_run(
            nsd_params, LVState(60, 40), np.random.default_rng(1), max_events=25
        )
        assert reference.termination == native_result.termination == "max-events"
        assert reference.total_events == native_result.total_events == 25
        assert reference.final_state == native_result.final_state

    def test_absorbed_termination_matches(self):
        gamma_only = LVParams.non_self_destructive(
            beta=0.0, delta=0.0, alpha=0.0, gamma=1.0
        )
        for seed in range(8):
            reference = LVJumpChainSimulator(gamma_only).run(
                LVState(4, 4), rng=np.random.default_rng(seed)
            )
            native_result = native_scalar_run(
                gamma_only, LVState(4, 4), np.random.default_rng(seed)
            )
            assert reference.termination == native_result.termination
            assert reference.final_state == native_result.final_state

    def test_generator_stream_position_matches(self, sd_params):
        # Both runners must consume identical amounts of the underlying
        # stream, or sequential sub-runs (the tau endgame) would diverge.
        reference_rng = np.random.default_rng(42)
        native_rng = np.random.default_rng(42)
        LVJumpChainSimulator(sd_params).run(LVState(30, 20), rng=reference_rng)
        native_scalar_run(sd_params, LVState(30, 20), native_rng)
        assert reference_rng.random() == native_rng.random()


class TestTauEndgameParity:
    def test_exact_tail_parity(self, sd_params, nsd_params):
        members = [
            SweepMember(sd_params, LVState(900, 700), 6),
            SweepMember(nsd_params, LVState(800, 780), 4),
        ]
        reference = run_tau_sweep_ensemble(members, rng=11, engine="numpy")
        native_run = run_tau_sweep_ensemble(members, rng=11, engine="numba")
        for expected, actual in zip(reference, native_run):
            assert_ensembles_identical(expected, actual)

    def test_tau_simulator_parity(self, sd_params):
        reference = LVTauEnsembleSimulator(sd_params, engine="numpy").run_ensemble(
            LVState(800, 600), 4, rng=13
        )
        native_run = LVTauEnsembleSimulator(sd_params, engine="numba").run_ensemble(
            LVState(800, 600), 4, rng=13
        )
        assert_ensembles_identical(reference, native_run)


def _tasks(sd_params, nsd_params, engine=None):
    return [
        SweepTask(sd_params, LVState(40, 24), 300, seed=1, label="easy", engine=engine),
        SweepTask(nsd_params, LVState(33, 31), 300, seed=2, label="hard", engine=engine),
        SweepTask(sd_params, LVState(36, 28), 300, seed=3, label="medium", engine=engine),
    ]


TARGET = PrecisionTarget(ci_half_width=0.05, min_replicates=64, max_replicates=512)


class TestSchedulerParity:
    def test_task_engine_validation(self, sd_params):
        with pytest.raises(ExperimentError):
            SweepTask(sd_params, LVState(4, 2), 10, engine="fortran")

    @pytest.mark.parametrize("sweep_batch", [96, 2048])
    def test_fixed_sweep_parity_across_sweep_batch(
        self, sd_params, nsd_params, sweep_batch
    ):
        reference = SweepScheduler(batch_size=128).run_sweep(_tasks(sd_params, nsd_params))
        native_run = SweepScheduler(batch_size=128, sweep_batch=sweep_batch).run_sweep(
            _tasks(sd_params, nsd_params, engine="numba")
        )
        for expected, actual in zip(reference, native_run):
            assert_ensembles_identical(expected, actual)

    def test_fixed_sweep_parity_across_jobs(self, sd_params, nsd_params):
        reference = SweepScheduler(batch_size=128).run_sweep(_tasks(sd_params, nsd_params))
        with SweepScheduler(batch_size=128, jobs=2) as scheduler:
            native_run = scheduler.run_sweep(_tasks(sd_params, nsd_params, engine="numba"))
        for expected, actual in zip(reference, native_run):
            assert_ensembles_identical(expected, actual)

    def test_adaptive_waves_parity(self, sd_params, nsd_params):
        reference_scheduler = SweepScheduler(wave_quantum=64)
        reference = reference_scheduler.run_sweep_adaptive(
            _tasks(sd_params, nsd_params), target=TARGET
        )
        native_scheduler = SweepScheduler(wave_quantum=64)
        native_run = native_scheduler.run_sweep_adaptive(
            _tasks(sd_params, nsd_params, engine="numba"), target=TARGET
        )
        # Identical interim estimates force identical stopping decisions:
        # same waves, same retired set, same final replicate counts.
        assert native_scheduler.last_adaptive_report == reference_scheduler.last_adaptive_report
        for expected, actual in zip(reference, native_run):
            assert_ensembles_identical(expected, actual)

    def test_mixed_engines_in_one_mega_batch(self, sd_params, nsd_params):
        # Partitioning a plan by resolved engine must not disturb results
        # or their order.
        tasks = [
            SweepTask(sd_params, LVState(40, 24), 100, seed=5, engine="numpy"),
            SweepTask(nsd_params, LVState(33, 31), 100, seed=6, engine="numba"),
            SweepTask(sd_params, LVState(36, 28), 100, seed=7),
        ]
        specs = plan_members(tasks, batch_size=512)
        mixed = execute_mega_batch(specs, engine="numpy")
        uniform = execute_mega_batch(
            [dataclasses.replace(spec, engine="numpy") for spec in specs],
            engine="numpy",
        )
        for expected, actual in zip(uniform, mixed):
            assert_ensembles_identical(expected, actual)


class TestStoreParity:
    def test_chunk_keys_exclude_engine(self, tmp_path, sd_params, nsd_params):
        """A journal written by one engine is replayed bit-for-bit by the other."""
        store = ExperimentStore(tmp_path)
        reference = SweepScheduler(store=store).run_sweep(_tasks(sd_params, nsd_params))
        written = store.stats.chunk_writes
        assert written > 0
        store.close()

        replay_store = ExperimentStore(tmp_path)
        replayed = SweepScheduler(store=replay_store).run_sweep(
            _tasks(sd_params, nsd_params, engine="numba")
        )
        # Every chunk is served from the journal: the engine selector is not
        # part of the key, so nothing is recomputed.
        assert replay_store.stats.chunk_hits == written
        assert replay_store.stats.chunk_misses == 0
        for expected, actual in zip(reference, replayed):
            assert_bitwise_equal(expected, actual)

    def test_native_journal_replays_on_numpy_scheduler(
        self, tmp_path, sd_params, nsd_params
    ):
        store = ExperimentStore(tmp_path)
        reference = SweepScheduler(store=store).run_sweep(
            _tasks(sd_params, nsd_params, engine="numba")
        )
        written = store.stats.chunk_writes
        store.close()

        replay_store = ExperimentStore(tmp_path)
        replayed = SweepScheduler(store=replay_store, engine="numpy").run_sweep(
            _tasks(sd_params, nsd_params)
        )
        assert replay_store.stats.chunk_hits == written
        for expected, actual in zip(reference, replayed):
            assert_bitwise_equal(expected, actual)


@pytest.mark.skipif(not NATIVE_AVAILABLE, reason="numba not installed")
class TestCompiledKernels:
    """Checks that only make sense against the real JIT artifacts."""

    def test_warm_kernels_populates_cache(self):
        native.warm_kernels()
        info = native.kernel_cache_info()
        assert info["cached"], info

    def test_engines_enumerate_numba(self):
        assert "numba" in ENGINES
        assert capability_report()["native_available"]


class TestKernelCacheInfo:
    """Deterministic cache reporting regardless of filesystem scan order."""

    def test_entries_are_sorted_under_shuffled_glob(self, monkeypatch):
        # glob.glob returns entries in filesystem order; kernel_cache_info
        # must sort the scan so its report is host-independent.
        shuffled = [
            "/cache/native-3.nbc",
            "/cache/native-1.nbi",
            "/cache/native-2.nbc",
        ]
        monkeypatch.setattr(native.glob, "glob", lambda pattern: list(shuffled))
        info = native.kernel_cache_info()
        assert info["entries"] == [
            "native-1.nbi",
            "native-2.nbc",
            "native-3.nbc",
        ]
        assert info["cached"]

    def test_empty_cache_reports_uncached(self, monkeypatch):
        monkeypatch.setattr(native.glob, "glob", lambda pattern: [])
        info = native.kernel_cache_info()
        assert info["entries"] == []
        assert not info["cached"]
