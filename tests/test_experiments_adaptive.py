"""Tests for the adaptive-precision sequential estimation layer.

Covers the sequential-stopping statistics (:class:`PrecisionTarget` and the
variance-aware planning helpers), the scheduler's adaptive waves (retiring,
exhaustion, mid-wave convergence, zero-allocation waves), the invariance
contract (same seeds ⇒ bitwise-identical estimates and retired set
regardless of ``sweep_batch``, ``batch_size``, ``jobs``, and execution
path), the adaptive threshold probes, and the shared :class:`WorkerPool`
lifecycle satellite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.statistics import (
    PrecisionTarget,
    mean_relative_half_width,
    replicates_for_mean,
    replicates_for_proportion,
    required_samples,
    wilson_half_width,
)
from repro.consensus.estimator import run_adaptive_ensemble
from repro.exceptions import EstimationError, ExperimentError
from repro.experiments.scheduler import (
    SweepScheduler,
    ThresholdRequest,
    WorkerPool,
    configure_default_scheduler,
    get_default_scheduler,
)
from repro.experiments.sweep import SweepTask
from repro.lv.state import LVState


def _easy_task(sd_params, seed=1):
    """ρ near 1: converges at the minimum replicate count."""
    return SweepTask(sd_params, LVState(40, 24), 400, seed=seed, label="easy")


def _hard_task(nsd_params, seed=2):
    """ρ near 1/2: needs close to the worst-case budget."""
    return SweepTask(nsd_params, LVState(33, 31), 400, seed=seed, label="hard")


class TestSequentialStopping:
    def test_precision_target_validation(self):
        with pytest.raises(EstimationError):
            PrecisionTarget(ci_half_width=0.0)
        with pytest.raises(EstimationError):
            PrecisionTarget(ci_half_width=1.5)
        with pytest.raises(EstimationError):
            PrecisionTarget(relative_error=-0.1)
        with pytest.raises(EstimationError):
            PrecisionTarget(confidence=1.0)
        with pytest.raises(EstimationError):
            PrecisionTarget(min_replicates=0)
        with pytest.raises(EstimationError):
            PrecisionTarget(min_replicates=100, max_replicates=50)

    def test_met_by_respects_min_replicates(self):
        target = PrecisionTarget(ci_half_width=0.2, min_replicates=50)
        assert not target.met_by(10, 10, np.empty(0))
        assert target.met_by(50, 50, np.empty(0))

    def test_met_by_width_criterion(self):
        target = PrecisionTarget(ci_half_width=0.05, min_replicates=1)
        assert not target.met_by(50, 100, np.empty(0))  # ~0.1 half-width
        assert target.met_by(1000, 2000, np.empty(0))

    def test_met_by_time_criterion(self):
        target = PrecisionTarget(
            ci_half_width=0.5, min_replicates=2, relative_error=0.05
        )
        tight = np.full(100, 500.0)
        spread = np.concatenate([np.full(50, 10.0), np.full(50, 2000.0)])
        assert target.met_by(90, 100, tight)
        assert not target.met_by(90, 100, spread)

    def test_boundary_proportions_need_far_fewer_samples(self):
        worst = required_samples(0.05)
        near_one = replicates_for_proportion(97, 100, 0.05)
        assert near_one < worst / 2
        near_half = replicates_for_proportion(50, 100, 0.05)
        assert near_half == pytest.approx(worst, rel=0.05)

    def test_replicates_for_mean_scales_with_variance(self):
        few = replicates_for_mean(100.0, 10.0, 0.05)
        many = replicates_for_mean(100.0, 100.0, 0.05)
        # Quadratic in std (ceil rounding keeps it from being exactly 100x).
        assert many == pytest.approx(few * 100, rel=0.1)
        assert replicates_for_mean(0.0, 10.0, 0.05) == float("inf")

    def test_mean_relative_half_width_edge_cases(self):
        assert mean_relative_half_width(np.empty(0)) == float("inf")
        assert mean_relative_half_width(np.array([5.0])) == float("inf")
        assert mean_relative_half_width(np.zeros(10)) == float("inf")

    def test_wilson_half_width_matches_interval(self):
        from repro.analysis.statistics import wilson_interval

        lower, upper = wilson_interval(90, 120)
        assert wilson_half_width(90, 120) == pytest.approx((upper - lower) / 2)


class TestAdaptiveSweep:
    def test_easy_task_retires_at_minimum(self, sd_params):
        target = PrecisionTarget()
        scheduler = SweepScheduler()
        results = scheduler.run_sweep_adaptive([_easy_task(sd_params)], target=target)
        report = scheduler.last_adaptive_report
        assert report.waves == 1
        assert report.converged == (True,)
        assert results[0].num_replicates == report.replicates[0] <= 2 * target.min_replicates
        assert report.half_widths[0] <= target.ci_half_width

    def test_hard_task_gets_more_replicates(self, sd_params, nsd_params):
        scheduler = SweepScheduler()
        scheduler.run_sweep_adaptive(
            [_easy_task(sd_params), _hard_task(nsd_params)], target=PrecisionTarget()
        )
        report = scheduler.last_adaptive_report
        easy, hard = report.replicates
        assert hard > 2 * easy
        assert report.converged == (True, True)
        assert all(w <= PrecisionTarget().ci_half_width for w in report.half_widths)

    def test_mid_wave_convergence_freezes_retired_task(self, sd_params, nsd_params):
        """A task converging while others continue keeps its exact result."""
        target = PrecisionTarget()
        together = SweepScheduler()
        fused = together.run_sweep_adaptive(
            [_easy_task(sd_params), _hard_task(nsd_params)], target=target
        )
        alone = SweepScheduler()
        solo = alone.run_sweep_adaptive([_easy_task(sd_params)], target=target)
        assert np.array_equal(fused[0].total_events, solo[0].total_events)
        assert np.array_equal(fused[0].final_x0, solo[0].final_x0)
        # The retired task contributed no chunks to the later waves.
        assert together.last_adaptive_report.replicates[0] == (
            alone.last_adaptive_report.replicates[0]
        )
        assert together.last_adaptive_report.waves > alone.last_adaptive_report.waves

    def test_wave_boundary_invariance_across_execution_knobs(
        self, sd_params, nsd_params
    ):
        """Same seeds ⇒ same retired set and bitwise estimates regardless of
        ``sweep_batch``, ``batch_size``, and ``jobs``."""
        target = PrecisionTarget()
        tasks = [_easy_task(sd_params), _hard_task(nsd_params)]
        reference_scheduler = SweepScheduler()
        reference = reference_scheduler.run_sweep_adaptive(tasks, target=target)
        reference_report = reference_scheduler.last_adaptive_report
        configurations = (
            dict(sweep_batch=64),
            dict(sweep_batch=8192),
            dict(batch_size=97),
            dict(jobs=2),
        )
        for overrides in configurations:
            scheduler = SweepScheduler(**overrides)
            results = scheduler.run_sweep_adaptive(tasks, target=target)
            report = scheduler.last_adaptive_report
            assert report.replicates == reference_report.replicates, overrides
            assert report.converged == reference_report.converged, overrides
            assert report.half_widths == reference_report.half_widths, overrides
            for a, b in zip(reference, results):
                assert np.array_equal(a.total_events, b.total_events), overrides
                assert np.array_equal(a.final_x0, b.final_x0), overrides
            scheduler.shutdown()

    def test_standalone_path_matches_scheduler_bitwise(self, sd_params, nsd_params):
        target = PrecisionTarget(ci_half_width=0.04)
        tasks = [_easy_task(sd_params, seed=11), _hard_task(nsd_params, seed=22)]
        fused = SweepScheduler().run_sweep_adaptive(tasks, target=target)
        for task, result in zip(tasks, fused):
            standalone = run_adaptive_ensemble(
                task.params, task.initial_state, target, rng=task.seed
            )
            assert standalone.num_replicates == result.num_replicates
            assert np.array_equal(standalone.total_events, result.total_events)
            assert np.array_equal(standalone.final_x0, result.final_x0)

    def test_exhausted_task_reports_unconverged(self, nsd_params):
        # A width no 192-replicate budget can reach for p near 1/2.
        target = PrecisionTarget(
            ci_half_width=0.01, min_replicates=64, max_replicates=192
        )
        scheduler = SweepScheduler()
        results = scheduler.run_sweep_adaptive(
            [_hard_task(nsd_params)], target=target
        )
        report = scheduler.last_adaptive_report
        assert report.converged == (False,)
        assert results[0].num_replicates == report.replicates[0] == 192
        assert report.half_widths[0] > target.ci_half_width

    def test_estimate_many_with_target_varies_budgets(self, sd_params, nsd_params):
        scheduler = SweepScheduler()
        estimates = scheduler.estimate_many(
            [_easy_task(sd_params), _hard_task(nsd_params)],
            target=PrecisionTarget(),
        )
        assert estimates[0].num_runs < estimates[1].num_runs
        for estimate in estimates:
            assert (
                wilson_half_width(
                    estimate.success.successes, estimate.success.trials
                )
                <= PrecisionTarget().ci_half_width
            )

    def test_scheduler_precision_field_enables_adaptive(self, sd_params):
        scheduler = SweepScheduler(precision=PrecisionTarget())
        estimates = scheduler.estimate_many([_easy_task(sd_params)])
        assert estimates[0].num_runs < 400  # the fixed budget was ignored

    def test_fixed_path_unchanged_without_target(self, sd_params):
        scheduler = SweepScheduler()
        estimates = scheduler.estimate_many([_easy_task(sd_params)])
        assert estimates[0].num_runs == 400
        assert scheduler.last_adaptive_report is None

    def test_decompose_many_with_target(self, sd_params, nsd_params):
        scheduler = SweepScheduler()
        decompositions = scheduler.decompose_many(
            [_easy_task(sd_params), _hard_task(nsd_params)],
            target=PrecisionTarget(),
        )
        assert np.all(decompositions[0].competitive_noise == 0)  # SD
        assert np.any(decompositions[1].competitive_noise != 0)  # NSD
        assert decompositions[0].num_runs < decompositions[1].num_runs

    def test_adaptive_thresholds_match_fixed_story(self, sd_params):
        fixed = SweepScheduler().find_thresholds(
            [ThresholdRequest(sd_params, 64, num_runs=385, seed=7)]
        )[0]
        adaptive = SweepScheduler(precision=PrecisionTarget()).find_thresholds(
            [ThresholdRequest(sd_params, 64, num_runs=385, seed=7)]
        )[0]
        assert fixed.has_threshold and adaptive.has_threshold
        assert 0.4 <= adaptive.threshold_gap / fixed.threshold_gap <= 2.5

    def test_target_broadcast_validation(self, sd_params):
        scheduler = SweepScheduler()
        with pytest.raises(ExperimentError):
            scheduler.run_sweep_adaptive([_easy_task(sd_params)])  # no target
        with pytest.raises(ExperimentError):
            scheduler.run_sweep_adaptive(
                [_easy_task(sd_params)], target=[PrecisionTarget()] * 2
            )
        with pytest.raises(ExperimentError):
            scheduler.run_sweep_adaptive([], target=PrecisionTarget())

    def test_events_counter_accumulates_adaptive_work(self, sd_params):
        scheduler = SweepScheduler()
        results = scheduler.run_sweep_adaptive(
            [_easy_task(sd_params)], target=PrecisionTarget()
        )
        assert scheduler.events_executed == int(results[0].total_events.sum()) > 0


class TestWorkerPool:
    def test_acquire_reuses_same_width_and_rebuilds_on_change(self):
        with WorkerPool() as pool:
            assert pool.workers == 0
            first = pool.acquire(2)
            assert pool.workers == 2
            assert pool.acquire(2) is first  # same width reuses
            shrunk = pool.acquire(1)  # the parallelism cap is honoured exactly
            assert shrunk is not first
            assert pool.workers == 1
            grown = pool.acquire(3)
            assert grown is not shrunk
            assert pool.workers == 3
        assert pool.workers == 0

    def test_acquire_validates_workers(self):
        with pytest.raises(ExperimentError):
            WorkerPool().acquire(0)

    def test_schedulers_can_share_a_pool(self, sd_params):
        with WorkerPool() as pool:
            first = SweepScheduler(jobs=2, batch_size=64, sweep_batch=128, pool=pool)
            second = SweepScheduler(jobs=2, batch_size=64, sweep_batch=128, pool=pool)
            tasks = [_easy_task(sd_params)]
            a = first.run_sweep(tasks)
            executor = pool.acquire(2)
            b = second.run_sweep(tasks)
            assert pool.acquire(2) is executor  # no respawn between schedulers
            assert np.array_equal(a[0].total_events, b[0].total_events)

    def test_configure_default_scheduler_hands_pool_over(self):
        baseline = get_default_scheduler()
        try:
            first = configure_default_scheduler(jobs=2)
            pool = first.pool
            second = configure_default_scheduler(jobs=1)
            assert second.pool is pool  # warm pool survives jobs toggles
            third = configure_default_scheduler(jobs=2)
            assert third.pool is pool
        finally:
            configure_default_scheduler(
                jobs=baseline.jobs,
                batch_size=baseline.batch_size,
                sweep_batch=baseline.sweep_batch,
                precision=baseline.precision,
            )
            get_default_scheduler().shutdown()

    def test_exception_escaping_pool_scope_stops_workers(self):
        """KeyboardInterrupt between lazy start and exit must not leak workers."""
        scheduler = SweepScheduler(jobs=2)
        with pytest.raises(KeyboardInterrupt):
            with scheduler._pool_scope(4) as executor:
                assert executor is not None
                assert scheduler.pool.workers == 2
                raise KeyboardInterrupt
        assert scheduler.pool.workers == 0

    def test_store_failure_mid_sweep_stops_workers(self, sd_params, tmp_path):
        """An exception thrown between mega-batches tears the pool down too."""
        from repro.store import ExperimentStore

        class FailingStore(ExperimentStore):
            def put_chunk(self, key, result, **metadata):
                raise KeyboardInterrupt

        scheduler = SweepScheduler(
            jobs=2, batch_size=64, sweep_batch=64, store=FailingStore(tmp_path)
        )
        with pytest.raises(KeyboardInterrupt):
            scheduler.run_sweep([_easy_task(sd_params), _hard_task(sd_params)])
        assert scheduler.pool.workers == 0

    def test_atexit_net_registered_on_lazy_start(self):
        """The atexit safety net arms on first acquire and is idempotent."""
        pool = WorkerPool()
        assert not pool._atexit_registered
        pool.acquire(1)
        assert pool._atexit_registered
        pool._shutdown_at_exit()
        assert pool.workers == 0
        pool._shutdown_at_exit()  # safe to run again (and at interpreter exit)
        assert pool.workers == 0

    def test_shutdown_accepts_abort_arguments(self):
        pool = WorkerPool()
        pool.acquire(2)
        pool.shutdown(wait=False, cancel_futures=True)
        assert pool.workers == 0
        pool.shutdown()  # idempotent

    def test_configure_default_scheduler_precision_roundtrip(self):
        baseline = get_default_scheduler()
        target = PrecisionTarget(ci_half_width=0.07)
        try:
            configured = configure_default_scheduler(precision=target)
            assert configured.precision == target
            kept = configure_default_scheduler(jobs=1)
            assert kept.precision == target  # omitted -> unchanged
            cleared = configure_default_scheduler(precision=None)
            assert cleared.precision is None
        finally:
            configure_default_scheduler(precision=baseline.precision)
