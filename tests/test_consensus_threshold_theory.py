"""Tests for threshold search, theory predictions, and exact formulas."""

from __future__ import annotations

import math

import pytest

from repro.consensus.exact import (
    applies_proportional_rule,
    no_competition_win_probability,
    proportional_win_probability,
)
from repro.consensus.theory import (
    high_probability_target,
    predicted_threshold,
    predicted_threshold_curve,
)
from repro.consensus.threshold import ThresholdSearch, find_threshold
from repro.exceptions import ModelError, ThresholdSearchError
from repro.lv.params import LVParams
from repro.lv.regimes import Table1Row
from repro.lv.state import LVState


class TestThresholdSearch:
    def test_finds_threshold_for_sd(self, sd_params):
        estimate = find_threshold(sd_params, 64, num_runs=80, rng=0)
        assert estimate.has_threshold
        assert 1 <= estimate.threshold_gap <= 62
        assert estimate.population_size == 64
        assert estimate.target_probability == pytest.approx(1 - 1 / 64)
        # Probes at or above the threshold must have been measured as passing.
        assert estimate.probability_at(estimate.threshold_gap) >= estimate.target_probability

    def test_nsd_threshold_larger_than_sd(self, sd_params, nsd_params):
        sd = find_threshold(sd_params, 128, num_runs=100, rng=1)
        nsd = find_threshold(nsd_params, 128, num_runs=100, rng=1)
        assert sd.has_threshold and nsd.has_threshold
        assert nsd.threshold_gap > sd.threshold_gap

    def test_no_threshold_for_intraspecific_only(self):
        params = LVParams.self_destructive(beta=1.0, delta=1.0, alpha=0.0, gamma=1.0)
        estimate = find_threshold(params, 64, num_runs=60, rng=2)
        assert not estimate.has_threshold
        assert estimate.threshold_gap is None

    def test_custom_target_probability(self, sd_params):
        relaxed = find_threshold(sd_params, 64, num_runs=80, target_probability=0.6, rng=3)
        strict = find_threshold(sd_params, 64, num_runs=80, target_probability=0.99, rng=3)
        assert relaxed.threshold_gap <= strict.threshold_gap

    def test_probe_gap_returns_estimate(self, sd_params):
        search = ThresholdSearch(sd_params, num_runs=50)
        estimate = search.probe_gap(64, 10, rng=4)
        assert estimate.num_runs == 50
        assert estimate.total_population == 64

    def test_invalid_population_size(self, sd_params):
        with pytest.raises(ThresholdSearchError):
            find_threshold(sd_params, 2, num_runs=10)

    def test_invalid_target(self, sd_params):
        search = ThresholdSearch(sd_params, num_runs=10)
        with pytest.raises(ThresholdSearchError):
            search.find(64, target_probability=1.5)

    def test_invalid_gap_range(self, sd_params):
        search = ThresholdSearch(sd_params, num_runs=10)
        with pytest.raises(ThresholdSearchError):
            search.find(64, min_gap=50, max_gap=10)

    def test_invalid_num_runs(self, sd_params):
        with pytest.raises(ThresholdSearchError):
            ThresholdSearch(sd_params, num_runs=0)


class TestTheoryPredictions:
    def test_high_probability_target(self):
        assert high_probability_target(100) == pytest.approx(0.99)
        with pytest.raises(ModelError):
            high_probability_target(1)

    def test_sd_interspecific_prediction(self, sd_params):
        prediction = predicted_threshold(sd_params)
        assert prediction.row is Table1Row.INTERSPECIFIC_ONLY
        assert prediction.threshold_exists
        assert prediction.upper_label == "log^2 n"
        assert prediction.upper_shape(1024) == pytest.approx(math.log(1024) ** 2)
        assert prediction.lower_shape(1024) == pytest.approx(math.sqrt(math.log(1024)))

    def test_nsd_interspecific_prediction(self, nsd_params):
        prediction = predicted_threshold(nsd_params)
        assert prediction.upper_label == "sqrt(n) log n"
        assert prediction.lower_label == "sqrt(n)"

    def test_intraspecific_only_has_no_threshold(self):
        params = LVParams.self_destructive(beta=1, delta=1, alpha=0.0, gamma=1.0)
        prediction = predicted_threshold(params)
        assert not prediction.threshold_exists
        assert prediction.lower_values([10, 100]) is None

    def test_balanced_intra_prediction_is_linear(self, sd_balanced_params):
        prediction = predicted_threshold(sd_balanced_params)
        assert prediction.upper_shape(100) == 99

    def test_delta_zero_prediction(self):
        sd = LVParams.self_destructive(beta=1, delta=0.0, alpha=1.0)
        nsd = LVParams.non_self_destructive(beta=1, delta=0.0, alpha=1.0)
        assert predicted_threshold(sd).upper_label == "log^2 n"
        assert predicted_threshold(nsd).upper_label == "sqrt(n log n)"

    def test_curve_evaluation(self, sd_params):
        curve = predicted_threshold_curve(sd_params, [64, 256, 1024])
        assert len(curve["lower"]) == 3
        assert len(curve["upper"]) == 3
        assert curve["upper"][2] > curve["upper"][0]


class TestExactFormulas:
    def test_proportional_value(self):
        assert proportional_win_probability((6, 4)) == pytest.approx(0.6)
        assert proportional_win_probability(LVState(1, 3)) == pytest.approx(0.25)

    def test_proportional_rejects_empty(self):
        with pytest.raises(ModelError):
            proportional_win_probability((0, 0))

    def test_applies_rule_sd_balanced(self, sd_balanced_params):
        assert applies_proportional_rule(sd_balanced_params)

    def test_applies_rule_nsd_balanced(self, nsd_balanced_params):
        assert applies_proportional_rule(nsd_balanced_params)

    def test_rule_rejects_interspecific_only(self, sd_params, nsd_params):
        assert not applies_proportional_rule(sd_params)
        assert not applies_proportional_rule(nsd_params)

    def test_rule_rejects_unbalanced_gamma(self):
        params = LVParams.self_destructive(beta=1, delta=1, alpha=1.0, gamma=0.5)
        assert not applies_proportional_rule(params)

    def test_rule_no_competition_requires_criticality(self):
        critical = LVParams(beta=1.0, delta=1.0, alpha0=0.0, alpha1=0.0)
        supercritical = LVParams(beta=2.0, delta=1.0, alpha0=0.0, alpha1=0.0)
        assert applies_proportional_rule(critical)
        assert not applies_proportional_rule(supercritical)

    def test_no_competition_win_probability(self):
        critical = LVParams(beta=1.0, delta=1.0, alpha0=0.0, alpha1=0.0)
        assert no_competition_win_probability(critical, (3, 1)) == pytest.approx(0.75)

    def test_no_competition_rejects_competitive_params(self, sd_params):
        with pytest.raises(ModelError):
            no_competition_win_probability(sd_params, (3, 1))

    def test_no_competition_rejects_non_critical(self):
        supercritical = LVParams(beta=2.0, delta=1.0, alpha0=0.0, alpha1=0.0)
        with pytest.raises(ModelError):
            no_competition_win_probability(supercritical, (3, 1))
