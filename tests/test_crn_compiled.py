"""Tests for the compiled propensity engine (:mod:`repro.crn.compiled`).

The central contract is bitwise exactness: for every network the builders can
produce, the compiled mass-action evaluation must return the very same floats
as the dict-based :meth:`Reaction.propensity` path, so simulators can switch
between the two without perturbing trajectories.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crn.builders import (
    build_birth_death_network,
    build_lv_network,
    build_pure_birth_network,
    build_single_species_logistic_network,
)
from repro.crn.compiled import CompiledNetwork
from repro.crn.network import ReactionNetwork
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.exceptions import InvalidConfigurationError, ModelError


def _builder_networks() -> list[ReactionNetwork]:
    """One representative network per builder configuration.

    Covers every reaction shape the compiler handles: order 0 is absent from
    the builders but covered separately below; unary (births, deaths),
    heterogeneous binary (interspecific), and homogeneous binary
    (intraspecific) reactions all appear, under both competition mechanisms
    and with deliberately asymmetric, non-unit rates.
    """
    return [
        build_lv_network(
            beta=1.3, delta=0.7, alpha0=0.9, alpha1=1.1,
            gamma0=0.4, gamma1=0.2, self_destructive=True,
        ),
        build_lv_network(
            beta=0.5, delta=1.5, alpha0=0.25, alpha1=2.0,
            gamma0=0.1, gamma1=0.3, self_destructive=False,
        ),
        build_lv_network(beta=1.0, delta=1.0, alpha0=1.0, alpha1=1.0),
        build_lv_network(beta=0.0, delta=1.0, alpha0=0.5, alpha1=0.5),
        build_birth_death_network(birth_rate=0.5, death_rate=1.0),
        build_pure_birth_network(birth_rate=2.0),
        build_single_species_logistic_network(
            birth_rate=1.0, death_rate=0.2, intra_rate=0.3
        ),
        build_single_species_logistic_network(
            birth_rate=0.7, death_rate=0.0, intra_rate=1.9, self_destructive=False
        ),
    ]


NETWORKS = _builder_networks()
NETWORK_IDS = [f"{net.name}-{net.num_reactions}r" for net in NETWORKS]


@pytest.mark.parametrize("network", NETWORKS, ids=NETWORK_IDS)
class TestBitwiseExactness:
    def test_matches_dict_path_on_random_states(self, network, rng):
        compiled = CompiledNetwork(network)
        for _ in range(250):
            vector = rng.integers(0, 60, size=network.num_species)
            expected = np.asarray(
                network.propensities(network.vector_to_state(vector)), dtype=float
            )
            produced = compiled.propensities(vector)
            # Bitwise equality, not approximate: the compiled path must run
            # the same float operations in the same order.
            assert np.array_equal(produced, expected)

    def test_matches_on_boundary_states(self, network):
        compiled = CompiledNetwork(network)
        boundaries = [0, 1, 2]
        grids = np.stack(
            np.meshgrid(*[boundaries] * network.num_species), axis=-1
        ).reshape(-1, network.num_species)
        for vector in grids:
            expected = np.asarray(
                network.propensities(network.vector_to_state(vector)), dtype=float
            )
            assert np.array_equal(compiled.propensities(vector), expected)

    def test_total_propensity_matches(self, network, rng):
        compiled = CompiledNetwork(network)
        vector = rng.integers(0, 40, size=network.num_species)
        values = np.asarray(
            network.propensities(network.vector_to_state(vector)), dtype=float
        )
        # Same values, same numpy pairwise summation -> identical float.
        assert compiled.total_propensity(vector) == float(values.sum())

    def test_batch_rows_match_single_evaluation(self, network, rng):
        compiled = CompiledNetwork(network)
        states = rng.integers(0, 60, size=(32, network.num_species))
        batch = compiled.propensities_batch(states)
        assert batch.shape == (32, network.num_reactions)
        for row, vector in zip(batch, states):
            assert np.array_equal(row, compiled.propensities(vector))

    def test_negative_counts_clamped_like_dict_path(self, network):
        compiled = CompiledNetwork(network)
        vector = np.full(network.num_species, -3, dtype=np.int64)
        clamped = np.zeros(network.num_species, dtype=np.int64)
        assert np.array_equal(
            compiled.propensities(vector), compiled.propensities(clamped)
        )


class TestCompiledStructure:
    def test_changes_match_stoichiometry(self):
        network = build_lv_network(beta=1.0, delta=1.0, alpha0=0.5, alpha1=0.5)
        compiled = CompiledNetwork(network)
        assert np.array_equal(compiled.changes, network.stoichiometry_matrix().T)

    def test_labels_in_reaction_order(self):
        network = build_birth_death_network(birth_rate=0.5, death_rate=1.0)
        compiled = CompiledNetwork(network)
        assert compiled.labels == tuple(r.label for r in network.reactions)

    def test_orders_recorded(self):
        network = build_lv_network(
            beta=1.0, delta=1.0, alpha0=0.5, alpha1=0.5, gamma0=0.2, gamma1=0.2
        )
        compiled = CompiledNetwork(network)
        expected = [reaction.order for reaction in network.reactions]
        assert list(compiled.orders) == expected

    def test_empty_network_rejected(self):
        network = ReactionNetwork(species=[Species("X")])
        with pytest.raises(ModelError):
            CompiledNetwork(network)

    def test_wrong_state_shape_rejected(self):
        compiled = CompiledNetwork(
            build_birth_death_network(birth_rate=0.5, death_rate=1.0)
        )
        with pytest.raises(InvalidConfigurationError):
            compiled.propensities([1, 2, 3])
        with pytest.raises(InvalidConfigurationError):
            compiled.propensities_batch(np.zeros((4, 3), dtype=np.int64))

    def test_order_zero_reaction_compiled(self):
        x = Species("X")
        network = ReactionNetwork(species=[x])
        network.add_reaction(Reaction({}, {x: 1}, rate=1.7, label="influx"))
        compiled = CompiledNetwork(network)
        state = network.vector_to_state(np.array([5]))
        expected = np.asarray(network.propensities(state), dtype=float)
        assert np.array_equal(compiled.propensities(np.array([5])), expected)
        assert expected[0] == 1.7


class TestOverrides:
    def _network(self) -> ReactionNetwork:
        return build_birth_death_network(birth_rate=0.5, death_rate=1.0)

    def test_override_replaces_compiled_value(self):
        network = self._network()
        label = network.reactions[0].label
        compiled = CompiledNetwork(
            network, overrides={label: lambda state: 42.0 + state[0]}
        )
        values = compiled.propensities(np.array([3]))
        assert values[0] == 45.0
        # The other reaction keeps its mass-action value.
        expected = np.asarray(
            network.propensities(network.vector_to_state(np.array([3]))), dtype=float
        )
        assert values[1] == expected[1]

    def test_override_applies_to_batch(self):
        network = self._network()
        label = network.reactions[1].label
        compiled = CompiledNetwork(network, overrides={label: lambda state: 7.0})
        batch = compiled.propensities_batch(np.array([[1], [2], [3]]))
        assert np.all(batch[:, 1] == 7.0)

    def test_has_overrides_flag(self):
        network = self._network()
        assert not CompiledNetwork(network).has_overrides
        label = network.reactions[0].label
        assert CompiledNetwork(network, overrides={label: lambda s: 0.0}).has_overrides

    def test_unknown_label_rejected(self):
        with pytest.raises(ModelError):
            CompiledNetwork(self._network(), overrides={"no-such": lambda s: 0.0})

    def test_non_callable_override_rejected(self):
        network = self._network()
        label = network.reactions[0].label
        with pytest.raises(ModelError):
            CompiledNetwork(network, overrides={label: 3.0})
