"""Tests for :mod:`repro.shard.planner` — cost model, LPT + refinement, history.

The acceptance gate: on a heavy-tailed T1R5-style grid *with* measured
event-rate history, the planned shards' cost imbalance (max shard cost over
mean shard cost) stays within :data:`~repro.shard.planner
.DEFAULT_IMBALANCE_BOUND` and beats the cost-blind round-robin baseline.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError, StoreError
from repro.experiments.scheduler import SweepScheduler
from repro.experiments.sweep import SweepTask
from repro.lv.params import LVParams
from repro.lv.state import LVState
from repro.shard import (
    DEFAULT_IMBALANCE_BOUND,
    EventRateHistory,
    ShardPlan,
    config_signature,
    plan_round_robin,
    plan_shards,
    threshold_probe_factor,
    unit_costs,
)
from repro.store import ExperimentStore


def _t1r5_params() -> LVParams:
    """T1R5's no-competition system: the heavy-tailed consensus-time regime."""
    return LVParams(beta=1.0, delta=1.0, alpha0=0.0, alpha1=0.0)


def _heavy_tailed_grid():
    """A T1R5-style grid: a gap sweep over populations spanning two decades.

    Three initial splits per population (population varying slowest, the
    natural sweep order), with measured per-replicate event counts growing
    superlinearly in n — so the largest configurations dominate total cost.
    That is exactly the regime where cost-blind planning round-robins badly:
    consecutive units share a population, so ``i % K`` stacks tail units.
    """
    params = _t1r5_params()
    populations = [10, 14, 20, 28, 40, 56, 80, 160, 320, 640, 1000]
    unit_populations = [n for n in populations for _ in range(3)]
    signatures = [config_signature(params, n) for n in unit_populations]
    budgets = [400] * len(unit_populations)
    history = EventRateHistory()
    for n in populations:
        # Measured-rate stand-in with the right shape: ~n^1.5 events per
        # replicate (between the ~n ballistic and ~n^2 diffusive regimes).
        history.record(config_signature(params, n), events=400 * (n**1.5), replicates=400)
    return signatures, budgets, history


class TestConfigSignature:
    def test_excludes_split_seeds_and_budgets(self):
        params = _t1r5_params()
        assert config_signature(params, 40) == config_signature(params, 40)
        # Only (params, total population) matter — nothing else goes in.
        assert config_signature(params, 40) != config_signature(params, 41)

    def test_distinguishes_parameter_sets(self, sd_params, nsd_params):
        assert config_signature(sd_params, 40) != config_signature(nsd_params, 40)


class TestEventRateHistory:
    def test_rate_is_events_per_replicate(self):
        history = EventRateHistory()
        history.record("sig", events=900.0, replicates=300)
        history.record("sig", events=100.0, replicates=100)
        assert history.rate("sig") == pytest.approx(2.5)
        assert history.rate("unseen") is None

    def test_zero_replicate_observations_are_ignored(self):
        history = EventRateHistory()
        history.record("sig", events=10.0, replicates=0)
        assert history.rate("sig") is None
        assert len(history) == 0

    def test_merge_accumulates(self):
        first = EventRateHistory()
        first.record("sig", events=100.0, replicates=50)
        second = EventRateHistory()
        second.record("sig", events=300.0, replicates=50)
        second.record("other", events=10.0, replicates=10)
        first.merge(second)
        assert first.rate("sig") == pytest.approx(4.0)
        assert first.rate("other") == pytest.approx(1.0)

    def test_from_journal_harvests_measured_rates(self, tmp_path, sd_params):
        store = ExperimentStore(tmp_path / "cache")
        scheduler = SweepScheduler(batch_size=32, sweep_batch=32, store=store)
        tasks = [
            SweepTask(sd_params, LVState(24, 16), 60, seed=1),
            SweepTask(sd_params, LVState(48, 32), 60, seed=2),
        ]
        try:
            results = scheduler.run_sweep(tasks)
        finally:
            scheduler.shutdown()
            store.close()
        history = EventRateHistory.from_journal(tmp_path / "cache")
        for task, result in zip(tasks, results):
            signature = config_signature(task.params, task.initial_state.total)
            expected = float(result.total_events.sum()) / task.num_runs
            assert history.rate(signature) == pytest.approx(expected)

    def test_from_journal_of_missing_path_is_empty(self, tmp_path):
        assert len(EventRateHistory.from_journal(tmp_path / "nowhere")) == 0

    def test_benchmark_round_trip(self, tmp_path):
        history = EventRateHistory()
        history.record("aa", events=500.0, replicates=100)
        history.record("bb", events=70.0, replicates=10)
        baseline = tmp_path / "BENCH_sweep.json"
        baseline.write_text(
            json.dumps({"shard_planner": {"history": history.to_payload()}})
        )
        loaded = EventRateHistory.load(baseline)
        assert loaded.events == history.events
        assert loaded.replicates == history.replicates

    def test_benchmark_without_history_section_is_an_error(self, tmp_path):
        baseline = tmp_path / "BENCH_sweep.json"
        baseline.write_text(json.dumps({"schema": 4}))
        with pytest.raises(StoreError, match="shard_planner.history"):
            EventRateHistory.from_benchmark(baseline)

    def test_load_dispatches_on_path_kind(self, tmp_path):
        # A directory goes down the journal path even when it is empty.
        assert len(EventRateHistory.load(tmp_path)) == 0


class TestUnitCosts:
    def test_no_history_falls_back_to_budgets(self):
        assert unit_costs(["a", "b"], [100, 300]) == [100.0, 300.0]

    def test_known_rates_scale_budgets(self):
        history = EventRateHistory()
        history.record("a", events=500.0, replicates=100)  # rate 5
        assert unit_costs(["a"], [200], history) == [1000.0]

    def test_unknown_signatures_use_the_mean_known_rate(self):
        history = EventRateHistory()
        history.record("a", events=200.0, replicates=100)  # rate 2
        history.record("b", events=600.0, replicates=100)  # rate 6
        costs = unit_costs(["a", "b", "unseen"], [10, 10, 10], history)
        assert costs == [20.0, 60.0, 40.0]

    def test_plain_mapping_history_is_accepted(self):
        assert unit_costs(["a"], [10], {"a": 3.0}) == [30.0]

    def test_length_mismatch_is_rejected(self):
        with pytest.raises(ExperimentError):
            unit_costs(["a", "b"], [10])

    def test_non_positive_budget_is_rejected(self):
        with pytest.raises(ExperimentError):
            unit_costs(["a"], [0])


class TestPlanShards:
    def test_acceptance_gate_heavy_tailed_grid_with_history(self):
        """Planner imbalance <= 1.25 on the T1R5-style grid; round-robin fails it."""
        signatures, budgets, history = _heavy_tailed_grid()
        costs = unit_costs(signatures, budgets, history)
        for shards in (2, 3, 4):
            plan = plan_shards(costs, shards)
            naive = plan_round_robin(costs, shards)
            assert plan.imbalance <= DEFAULT_IMBALANCE_BOUND, plan.shard_costs
            assert plan.imbalance <= naive.imbalance
        # The ascending grid is exactly where round-robin stacks tail units
        # onto one shard; make sure the comparison is not vacuous.
        assert plan_round_robin(costs, 4).imbalance > DEFAULT_IMBALANCE_BOUND

    def test_plan_is_deterministic(self):
        signatures, budgets, history = _heavy_tailed_grid()
        costs = unit_costs(signatures, budgets, history)
        assert plan_shards(costs, 3) == plan_shards(costs, 3)

    def test_every_unit_assigned_exactly_once(self):
        costs = [5.0, 1.0, 3.0, 2.0, 8.0]
        plan = plan_shards(costs, 2)
        owned = [unit for shard in range(2) for unit in plan.members(shard)]
        assert sorted(owned) == list(range(len(costs)))

    def test_more_shards_than_units_leaves_empty_shards(self):
        plan = plan_shards([1.0, 1.0], 4)
        assert sum(len(plan.members(shard)) for shard in range(4)) == 2
        # Mean over all shards: empty shards count against balance.
        assert plan.imbalance == pytest.approx(2.0)

    def test_zero_cost_units_spread_by_count(self):
        plan = plan_shards([0.0] * 6, 3)
        assert [len(plan.members(shard)) for shard in range(3)] == [2, 2, 2]

    def test_refinement_improves_on_raw_lpt(self):
        # The classic LPT-suboptimal instance: greedy lands at 7/5, and only
        # a pairwise swap (3 for 2) reaches the flat 6/6 optimum.
        costs = [3.0, 3.0, 2.0, 2.0, 2.0]
        raw = plan_shards(costs, 2, refine=False)
        refined = plan_shards(costs, 2, imbalance_bound=1.0)
        assert max(raw.shard_costs) == pytest.approx(7.0)
        assert max(refined.shard_costs) == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            plan_shards([], 2)
        with pytest.raises(ExperimentError):
            plan_shards([1.0], 0)
        with pytest.raises(ExperimentError):
            plan_shards([-1.0], 2)
        with pytest.raises(ExperimentError):
            plan_shards([1.0], 2, imbalance_bound=0.5)

    def test_members_rejects_out_of_range_shard(self):
        plan = plan_shards([1.0], 1)
        with pytest.raises(ExperimentError):
            plan.members(1)

    def test_single_shard_owns_everything(self):
        plan = plan_shards([4.0, 2.0, 7.0], 1)
        assert plan.members(0) == (0, 1, 2)
        assert plan.imbalance == pytest.approx(1.0)


class TestThresholdProbeFactor:
    def test_grows_logarithmically(self):
        assert threshold_probe_factor(1) == 1
        assert threshold_probe_factor(2) == 1
        assert threshold_probe_factor(1024) == 10
        assert threshold_probe_factor(1025) == 11

    def test_rejects_non_positive_population(self):
        with pytest.raises(ExperimentError):
            threshold_probe_factor(0)


class TestShardPlanProperties:
    def test_shard_costs_sum_to_total(self):
        costs = [2.0, 4.0, 6.0, 8.0]
        plan = plan_shards(costs, 2)
        assert sum(plan.shard_costs) == pytest.approx(sum(costs))

    def test_round_robin_assignment_shape(self):
        plan = plan_round_robin([1.0, 1.0, 1.0, 1.0, 1.0], 2)
        assert plan.assignment == (0, 1, 0, 1, 0)
        assert isinstance(plan, ShardPlan)
