"""Tests for the replicate scheduler (:mod:`repro.experiments.scheduler`).

The scheduler's core promise is determinism: the same root seed must produce
bit-identical results for every batch size decomposition executed and for
every worker count, because per-batch seeds are spawned from the root seed
before dispatch.
"""

from __future__ import annotations

import pytest

from repro.consensus.estimator import estimate_majority_probability, summarise_runs
from repro.exceptions import ExperimentError
from repro.experiments.scheduler import (
    ReplicaScheduler,
    configure_default_scheduler,
    get_default_scheduler,
)
from repro.experiments.workloads import replica_batches
from repro.lv.state import LVState


STATE = LVState(30, 18)


class TestReplicaBatches:
    def test_full_batches_plus_remainder(self):
        assert replica_batches(1000, 400) == [400, 400, 200]

    def test_single_partial_batch(self):
        assert replica_batches(64, 256) == [64]

    def test_exact_multiple(self):
        assert replica_batches(512, 256) == [256, 256]

    def test_invalid_arguments(self):
        with pytest.raises(ExperimentError):
            replica_batches(0, 10)
        with pytest.raises(ExperimentError):
            replica_batches(10, 0)


class TestReplicaScheduler:
    def test_plan_matches_replica_batches(self):
        scheduler = ReplicaScheduler(batch_size=100)
        assert scheduler.plan(250) == [100, 100, 50]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ExperimentError):
            ReplicaScheduler(jobs=0)
        with pytest.raises(ExperimentError):
            ReplicaScheduler(batch_size=0)

    def test_run_replicates_count_and_determinism(self, sd_params):
        scheduler = ReplicaScheduler(batch_size=64)
        first = scheduler.run_replicates(sd_params, STATE, 150, rng=7)
        second = scheduler.run_replicates(sd_params, STATE, 150, rng=7)
        assert len(first) == 150
        assert first == second

    def test_results_independent_of_worker_count(self, sd_params):
        """jobs=2 must reproduce jobs=1 bit for bit (seeds spawn pre-dispatch)."""
        inline = ReplicaScheduler(jobs=1, batch_size=32)
        pooled = ReplicaScheduler(jobs=2, batch_size=32)
        assert inline.run_replicates(sd_params, STATE, 96, rng=3) == pooled.run_replicates(
            sd_params, STATE, 96, rng=3
        )

    def test_run_ensembles_matches_run_replicates(self, sd_params):
        scheduler = ReplicaScheduler(batch_size=64)
        ensemble = scheduler.run_ensembles(sd_params, STATE, 150, rng=7)
        assert ensemble.num_replicates == 150
        assert ensemble.to_run_results() == scheduler.run_replicates(
            sd_params, STATE, 150, rng=7
        )

    def test_estimate_matches_manual_summary(self, sd_params):
        scheduler = ReplicaScheduler(batch_size=64)
        estimate = scheduler.estimate(sd_params, STATE, 128, rng=5)
        manual = summarise_runs(
            scheduler.run_replicates(sd_params, STATE, 128, rng=5)
        )
        assert estimate == manual

    def test_estimate_agrees_with_scalar_estimator(self, sd_params):
        """Scheduled estimates stay within Monte-Carlo noise of the original."""
        scheduled = ReplicaScheduler(batch_size=128).estimate(
            sd_params, STATE, 600, rng=17
        )
        scalar = estimate_majority_probability(
            sd_params, STATE, num_runs=600, rng=18, method="scalar"
        )
        assert abs(
            scheduled.majority_probability - scalar.majority_probability
        ) < 0.08

    def test_accepts_tuple_initial_state(self, sd_params):
        scheduler = ReplicaScheduler(batch_size=32)
        results = scheduler.run_replicates(sd_params, (20, 12), 40, rng=2)
        assert len(results) == 40
        assert results[0].initial_state == LVState(20, 12)

    def test_decompose_noise_shapes(self, nsd_params):
        scheduler = ReplicaScheduler(batch_size=64)
        decomposition = scheduler.decompose_noise(nsd_params, STATE, 100, rng=19)
        assert decomposition.individual_noise.shape == (100,)
        assert decomposition.competitive_noise.shape == (100,)

    def test_find_threshold_runs(self, sd_params):
        estimate = ReplicaScheduler(batch_size=64).find_threshold(
            sd_params, 64, num_runs=60, rng=23
        )
        assert estimate.population_size == 64


class TestDefaultScheduler:
    def test_configure_updates_shared_instance(self):
        original = get_default_scheduler()
        try:
            configured = configure_default_scheduler(jobs=2, batch_size=128)
            assert get_default_scheduler() is configured
            assert configured.jobs == 2
            assert configured.batch_size == 128
            # Partial reconfiguration keeps the other knob.
            assert configure_default_scheduler(jobs=1).batch_size == 128
        finally:
            configure_default_scheduler(
                jobs=original.jobs, batch_size=original.batch_size
            )

    def test_batch_size_does_not_change_estimates_statistically(self, sd_params):
        small = ReplicaScheduler(batch_size=32).estimate(sd_params, STATE, 400, rng=29)
        large = ReplicaScheduler(batch_size=400).estimate(sd_params, STATE, 400, rng=31)
        assert abs(small.majority_probability - large.majority_probability) < 0.1


class TestBackendSelection:
    """The backend selector threaded through the scheduling layer."""

    def test_invalid_backend_and_epsilon_rejected(self):
        with pytest.raises(ExperimentError):
            ReplicaScheduler(backend="approximate")
        with pytest.raises(ExperimentError):
            ReplicaScheduler(tau_epsilon=0.0)

    def test_tau_backend_estimate_and_leap_metering(self, sd_params):
        scheduler = ReplicaScheduler(backend="tau")
        estimate = scheduler.estimate(
            sd_params, LVState(30_060, 29_940), 16, rng=4
        )
        assert estimate.num_runs == 16
        assert 0 < scheduler.leap_events_executed <= scheduler.events_executed

    def test_exact_backend_keeps_leap_meter_at_zero(self, sd_params):
        scheduler = ReplicaScheduler()
        scheduler.estimate(sd_params, STATE, 32, rng=4)
        assert scheduler.leap_events_executed == 0
        assert scheduler.events_executed > 0

    def test_auto_below_threshold_is_bitwise_exact(self, sd_params):
        auto = ReplicaScheduler(backend="auto").run_ensembles(
            sd_params, STATE, 64, rng=11
        )
        exact = ReplicaScheduler(backend="exact").run_ensembles(
            sd_params, STATE, 64, rng=11
        )
        assert (auto.total_events == exact.total_events).all()
        assert (auto.final_x0 == exact.final_x0).all()

    def test_sweep_task_backend_override_wins(self, sd_params):
        from repro.experiments.scheduler import SweepScheduler
        from repro.experiments.sweep import SweepTask

        scheduler = SweepScheduler()  # exact default
        tasks = [
            SweepTask(sd_params, STATE, 16, seed=1),
            SweepTask(
                sd_params, LVState(30_060, 29_940), 8, seed=2, backend="tau"
            ),
        ]
        results = scheduler.run_sweep(tasks)
        assert results[0].leap_events is None
        assert results[1].leap_events is not None
        assert scheduler.leap_events_executed == int(results[1].leap_events.sum())

    def test_sweep_task_backend_validation(self, sd_params):
        from repro.experiments.sweep import SweepTask

        with pytest.raises(ExperimentError):
            SweepTask(sd_params, STATE, 16, backend="fast")

    def test_mixed_mega_batch_preserves_member_order(self, sd_params, nsd_params):
        from repro.experiments.sweep import MemberSpec, execute_mega_batch
        from repro.lv.tau import run_tau_sweep_ensemble

        specs = [
            MemberSpec(0, sd_params, (30, 18), 8, seed=7, max_events=10**6),
            MemberSpec(
                1, nsd_params, (30_060, 29_940), 4, seed=8, max_events=10**7,
                backend="tau",
            ),
            MemberSpec(2, sd_params, (24, 12), 8, seed=9, max_events=10**6),
        ]
        results = execute_mega_batch(specs, backend="exact")
        assert [r.num_replicates for r in results] == [8, 4, 8]
        assert results[0].leap_events is None
        assert results[2].leap_events is None
        solo = run_tau_sweep_ensemble(
            [specs[1].to_member()], member_seeds=[specs[1].seed]
        )[0]
        assert (results[1].total_events == solo.total_events).all()

    def test_adaptive_waves_run_on_tau_backend(self, sd_params):
        from repro.analysis.statistics import PrecisionTarget
        from repro.experiments.scheduler import SweepScheduler
        from repro.experiments.sweep import SweepTask

        scheduler = SweepScheduler(
            backend="tau",
            precision=PrecisionTarget(
                ci_half_width=0.2, min_replicates=32, max_replicates=128
            ),
        )
        estimates = scheduler.estimate_many(
            [SweepTask(sd_params, LVState(25_030, 24_970), 64, seed=3)]
        )
        assert estimates[0].num_runs >= 32
        assert scheduler.leap_events_executed > 0

    def test_configure_default_scheduler_backend(self):
        original = get_default_scheduler()
        try:
            configured = configure_default_scheduler(
                backend="auto", tau_epsilon=0.05
            )
            assert configured.backend == "auto"
            assert configured.tau_epsilon == 0.05
            # Partial reconfiguration keeps the backend knobs.
            assert configure_default_scheduler(jobs=1).backend == "auto"
        finally:
            configure_default_scheduler(
                backend=original.backend, tau_epsilon=original.tau_epsilon
            )
