"""Resume determinism: a killed sweep resumes bitwise-identically.

The contract under test — the tentpole acceptance criterion — is that
interrupting a store-backed sweep after any number of journaled chunks and
re-running it against the same cache directory reproduces the uninterrupted
run **bit-for-bit**, with the journaled prefix served from the store, and
that this holds across ``sweep_batch`` / ``jobs`` settings (which the chunk
keys deliberately exclude).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.statistics import PrecisionTarget
from repro.experiments.scheduler import SweepScheduler, ThresholdRequest
from repro.experiments.sweep import SweepTask
from repro.lv.state import LVState
from repro.store import ExperimentStore

from test_store import assert_bitwise_equal


class SimulatedKill(BaseException):
    """Raised mid-run to model SIGTERM/Ctrl-C between journal appends."""


class KillingStore(ExperimentStore):
    """A store that dies after journaling its *kill_after*-th chunk."""

    def __init__(self, cache_dir, *, kill_after):
        super().__init__(cache_dir)
        self.kill_after = kill_after

    def put_chunk(self, key, result, **metadata):
        super().put_chunk(key, result, **metadata)
        if self.stats.chunk_writes >= self.kill_after:
            raise SimulatedKill


def _tasks(sd_params, nsd_params):
    return [
        SweepTask(sd_params, LVState(40, 24), 300, seed=1, label="easy"),
        SweepTask(nsd_params, LVState(33, 31), 300, seed=2, label="hard"),
        SweepTask(sd_params, LVState(36, 28), 300, seed=3, label="medium"),
    ]


TARGET = PrecisionTarget(ci_half_width=0.05, min_replicates=64, max_replicates=512)


class TestAdaptiveResume:
    @pytest.mark.parametrize("kill_after", [1, 3])
    @pytest.mark.parametrize(
        "resume_config",
        [
            dict(),
            dict(sweep_batch=96),
            dict(jobs=2),
        ],
        ids=["same-config", "different-sweep-batch", "jobs-2"],
    )
    def test_killed_adaptive_sweep_resumes_bitwise(
        self, tmp_path, sd_params, nsd_params, kill_after, resume_config
    ):
        tasks = _tasks(sd_params, nsd_params)
        reference_scheduler = SweepScheduler(wave_quantum=64)
        reference = reference_scheduler.run_sweep_adaptive(tasks, target=TARGET)
        reference_report = reference_scheduler.last_adaptive_report

        killing = KillingStore(tmp_path, kill_after=kill_after)
        with pytest.raises(SimulatedKill):
            SweepScheduler(wave_quantum=64, store=killing).run_sweep_adaptive(
                tasks, target=TARGET
            )
        killing.close()
        assert killing.stats.chunk_writes == kill_after

        store = ExperimentStore(tmp_path)
        scheduler = SweepScheduler(wave_quantum=64, store=store, **resume_config)
        resumed = scheduler.run_sweep_adaptive(tasks, target=TARGET)
        # The journaled prefix was replayed, not recomputed ...
        assert store.stats.chunk_hits == kill_after
        # ... and the merged per-task ensembles are identical to the last bit,
        # as is the adaptive report (waves, retired set, half-widths).
        for expected, actual in zip(reference, resumed):
            assert_bitwise_equal(expected, actual)
        assert scheduler.last_adaptive_report == reference_report

    def test_second_interruption_also_resumes(self, tmp_path, sd_params, nsd_params):
        """Kills can pile up; each resume extends the journaled prefix."""
        tasks = _tasks(sd_params, nsd_params)
        reference = SweepScheduler(wave_quantum=64).run_sweep_adaptive(
            tasks, target=TARGET
        )
        for kill_after in (1, 2):
            killing = KillingStore(tmp_path, kill_after=kill_after)
            with pytest.raises(SimulatedKill):
                SweepScheduler(wave_quantum=64, store=killing).run_sweep_adaptive(
                    tasks, target=TARGET
                )
            killing.close()
        store = ExperimentStore(tmp_path)
        resumed = SweepScheduler(wave_quantum=64, store=store).run_sweep_adaptive(
            tasks, target=TARGET
        )
        assert store.stats.chunk_hits > 0
        for expected, actual in zip(reference, resumed):
            assert_bitwise_equal(expected, actual)


class TestFixedBudgetResume:
    @pytest.mark.parametrize("resume_config", [dict(), dict(sweep_batch=128)])
    def test_killed_fixed_sweep_resumes_bitwise(
        self, tmp_path, sd_params, nsd_params, resume_config
    ):
        tasks = _tasks(sd_params, nsd_params)
        reference = SweepScheduler(batch_size=128).run_sweep(tasks)

        killing = KillingStore(tmp_path, kill_after=2)
        with pytest.raises(SimulatedKill):
            SweepScheduler(batch_size=128, store=killing).run_sweep(tasks)
        killing.close()

        store = ExperimentStore(tmp_path)
        resumed = SweepScheduler(batch_size=128, store=store, **resume_config).run_sweep(
            tasks
        )
        assert store.stats.chunk_hits == 2
        for expected, actual in zip(reference, resumed):
            assert_bitwise_equal(expected, actual)

    def test_killed_run_ensembles_resumes_bitwise(self, tmp_path, sd_params):
        reference = SweepScheduler(batch_size=64).run_ensembles(
            sd_params, LVState(24, 16), 200, rng=5
        )
        killing = KillingStore(tmp_path, kill_after=1)
        with pytest.raises(SimulatedKill):
            SweepScheduler(batch_size=64, store=killing).run_ensembles(
                sd_params, LVState(24, 16), 200, rng=5
            )
        killing.close()
        store = ExperimentStore(tmp_path)
        resumed = SweepScheduler(batch_size=64, store=store).run_ensembles(
            sd_params, LVState(24, 16), 200, rng=5
        )
        assert store.stats.chunk_hits == 1
        assert store.stats.chunk_misses > 0
        assert_bitwise_equal(reference, resumed)


class TestThresholdResume:
    def test_killed_threshold_sweep_resumes_identically(
        self, tmp_path, sd_params, nsd_params
    ):
        requests = [
            ThresholdRequest(sd_params, 64, num_runs=60, seed=7),
            ThresholdRequest(nsd_params, 64, num_runs=60, seed=8),
        ]
        reference = SweepScheduler().find_thresholds(requests)

        killing = KillingStore(tmp_path, kill_after=3)
        with pytest.raises(SimulatedKill):
            SweepScheduler(store=killing).find_thresholds(requests)
        killing.close()

        store = ExperimentStore(tmp_path)
        resumed = SweepScheduler(store=store).find_thresholds(requests)
        assert store.stats.chunk_hits >= 3
        for expected, actual in zip(reference, resumed):
            assert expected.threshold_gap == actual.threshold_gap
            assert expected.target_probability == actual.target_probability
            # Identical probe schedule and identical per-probe estimates:
            # the resumed search retraced the interrupted one exactly.
            assert list(expected.probes) == list(actual.probes)
            for gap, probe in expected.probes.items():
                assert actual.probes[gap].majority_probability == probe.majority_probability
                assert actual.probes[gap].num_runs == probe.num_runs


class TestKeyboardInterruptDurability:
    """Ctrl-C propagates, but chunks journaled before it survive (satellite).

    ``on_result`` journals each mega-batch the moment it completes, so a
    ``KeyboardInterrupt`` raised by a later batch — the inline executor
    re-raises it immediately — can only cost in-flight work, never finished
    work.  The resumed run then replays the journaled prefix bit-for-bit,
    exactly like the SIGTERM/kill scenarios above.
    """

    @pytest.mark.parametrize("interrupt_at", [2, 4])
    def test_interrupt_mid_sweep_keeps_journaled_chunks(
        self, tmp_path, monkeypatch, sd_params, nsd_params, interrupt_at
    ):
        import repro.experiments.scheduler as scheduler_module
        from repro.experiments.sweep import execute_mega_batch

        tasks = _tasks(sd_params, nsd_params)
        reference = SweepScheduler(batch_size=128, sweep_batch=128).run_sweep(tasks)

        calls = dict(count=0)

        def interrupting(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == interrupt_at:
                raise KeyboardInterrupt
            return execute_mega_batch(*args, **kwargs)

        monkeypatch.setattr(scheduler_module, "execute_mega_batch", interrupting)
        store = ExperimentStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            SweepScheduler(batch_size=128, sweep_batch=128, store=store).run_sweep(tasks)
        store.close()
        monkeypatch.undo()

        journaled = interrupt_at - 1
        resume_store = ExperimentStore(tmp_path)
        resumed = SweepScheduler(
            batch_size=128, sweep_batch=128, store=resume_store
        ).run_sweep(tasks)
        assert resume_store.stats.chunk_hits == journaled
        for expected, actual in zip(reference, resumed):
            assert_bitwise_equal(expected, actual)

    def test_interrupt_mid_adaptive_sweep_keeps_journaled_chunks(
        self, tmp_path, monkeypatch, sd_params, nsd_params
    ):
        import repro.experiments.scheduler as scheduler_module
        from repro.experiments.sweep import execute_mega_batch

        tasks = _tasks(sd_params, nsd_params)
        reference_scheduler = SweepScheduler(wave_quantum=64)
        reference = reference_scheduler.run_sweep_adaptive(tasks, target=TARGET)

        calls = dict(count=0)

        def interrupting(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 2:
                raise KeyboardInterrupt
            return execute_mega_batch(*args, **kwargs)

        monkeypatch.setattr(scheduler_module, "execute_mega_batch", interrupting)
        store = ExperimentStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            SweepScheduler(wave_quantum=64, store=store).run_sweep_adaptive(
                tasks, target=TARGET
            )
        store.close()
        monkeypatch.undo()

        resume_store = ExperimentStore(tmp_path)
        scheduler = SweepScheduler(wave_quantum=64, store=resume_store)
        resumed = scheduler.run_sweep_adaptive(tasks, target=TARGET)
        assert resume_store.stats.chunk_hits >= 1
        assert scheduler.last_adaptive_report == reference_scheduler.last_adaptive_report
        for expected, actual in zip(reference, resumed):
            assert_bitwise_equal(expected, actual)


class TestInterruptedJournalFile:
    def test_truncated_journal_resumes(self, tmp_path, sd_params, nsd_params):
        """A SIGKILL mid-append leaves a torn line; resume survives it."""
        tasks = _tasks(sd_params, nsd_params)
        reference = SweepScheduler(batch_size=128).run_sweep(tasks)
        seeding = ExperimentStore(tmp_path)
        SweepScheduler(batch_size=128, store=seeding).run_sweep(tasks)
        seeding.close()
        journal = tmp_path / "journal.jsonl"
        raw = journal.read_bytes()
        journal.write_bytes(raw[: len(raw) - 25])  # tear the final record
        store = ExperimentStore(tmp_path)
        resumed = SweepScheduler(batch_size=128, store=store).run_sweep(tasks)
        assert store.stats.chunk_hits > 0  # intact prefix replayed
        assert store.stats.chunk_misses > 0  # torn record recomputed
        for expected, actual in zip(reference, resumed):
            assert_bitwise_equal(expected, actual)
