"""Direct tests of the :class:`~repro.crn.compiled.CompiledNetwork` override slot.

The override slot is the generic escape hatch for non-mass-action kinetics;
the scenario engine's affine ``rate + k·x`` law is one concrete user.  These
tests pin down the slot's contract: scalar overrides replace exactly their
reaction's compiled value, batch evaluation prefers the vectorized form of
the callable and falls back per-row when the callable doesn't support it,
and the batch path always matches the dict-evaluated single-state reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crn.builders import build_lv_network
from repro.crn.compiled import CompiledNetwork
from repro.crn.network import ReactionNetwork
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.lv.params import LVParams
from repro.scenario.registry import CATALYSIS_K_LIG, build_scenario


#: The rates the catalysis network/scenario pair below is built from.  The
#: ``neutral`` constructor splits the *total* competition rate alpha across
#: the two ordered inter reactions, so each fires at ``alpha0 = alpha1``.
CAT_PARAMS = LVParams.self_destructive(beta=0.3, delta=0.3, alpha=0.05)


def _catalysis_network() -> tuple[ReactionNetwork, str, str]:
    """A 3-species X0/X1/C network mirroring the catalysis scenario."""
    network = ReactionNetwork(name="catalysis")
    x0 = network.add_species(Species("X0"))
    x1 = network.add_species(Species("X1"))
    catalyst = network.add_species(Species("C"))
    beta, delta = CAT_PARAMS.beta, CAT_PARAMS.delta
    network.add_reaction(Reaction({x0: 1}, {x0: 2}, rate=beta, label="birth:X0"))
    network.add_reaction(Reaction({x1: 1}, {x1: 2}, rate=beta, label="birth:X1"))
    network.add_reaction(Reaction({x0: 1}, {}, rate=delta, label="death:X0"))
    network.add_reaction(Reaction({x1: 1}, {}, rate=delta, label="death:X1"))
    network.add_reaction(
        Reaction({x0: 1, x1: 1}, {catalyst: 0}, rate=CAT_PARAMS.alpha0, label="inter:X0")
    )
    network.add_reaction(
        Reaction({x0: 1, x1: 1}, {catalyst: 0}, rate=CAT_PARAMS.alpha1, label="inter:X1")
    )
    return network, "inter:X0", "inter:X1"


def _affine_override(base: float, coefficient: float):
    """The catalysis law in the spec's canonical operand order."""

    def rate(state: np.ndarray) -> float:
        a = base + coefficient * float(state[2])
        a = a * float(state[0])
        a = a * float(state[1])
        return a

    return rate


class TestScalarOverrides:
    def test_override_only_touches_its_reaction(self):
        network, label, _ = _catalysis_network()
        plain = CompiledNetwork(network)
        patched = CompiledNetwork(network, overrides={label: lambda state: 1234.5})
        state = np.array([10, 8, 5])
        expected = plain.propensities(state).copy()
        index = patched.labels.index(label)
        expected[index] = 1234.5
        assert np.array_equal(patched.propensities(state), expected)

    def test_affine_override_matches_scenario_tables(self):
        network, inter0, inter1 = _catalysis_network()
        compiled = CompiledNetwork(
            network,
            overrides={
                inter0: _affine_override(CAT_PARAMS.alpha0, CATALYSIS_K_LIG),
                inter1: _affine_override(CAT_PARAMS.alpha1, CATALYSIS_K_LIG),
            },
        )
        scenario = build_scenario("catalysis", CAT_PARAMS)
        rng = np.random.default_rng(42)
        for state in rng.integers(0, 60, size=(20, 3)):
            assert np.array_equal(
                compiled.propensities(state), scenario.propensities(state)
            )


class TestBatchOverrides:
    def _network(self):
        return build_lv_network(beta=1.0, delta=1.0, alpha0=0.5, alpha1=0.5)

    def test_vectorized_override_used_for_batches(self):
        network = self._network()
        label = network.reactions[0].label
        calls = []

        def vectorized(states):
            calls.append(np.ndim(states))
            states = np.atleast_2d(states)
            return 2.0 * states[:, 0].astype(np.float64)

        compiled = CompiledNetwork(network, overrides={label: vectorized})
        states = np.array([[3, 2], [5, 1], [0, 4]])
        batch = compiled.propensities_batch(states)
        index = compiled.labels.index(label)
        assert np.array_equal(batch[:, index], 2.0 * states[:, 0])
        # The whole batch went through one vectorized call, not a row loop.
        assert calls == [2]

    def test_batch_matches_dict_evaluated_reference_per_row(self):
        network, inter0, inter1 = _catalysis_network()
        compiled = CompiledNetwork(
            network,
            overrides={
                inter0: _affine_override(CAT_PARAMS.alpha0, CATALYSIS_K_LIG),
                inter1: _affine_override(CAT_PARAMS.alpha1, CATALYSIS_K_LIG),
            },
        )
        rng = np.random.default_rng(7)
        states = rng.integers(0, 50, size=(13, 3))
        batch = compiled.propensities_batch(states)
        for row in range(states.shape[0]):
            # The dict-evaluated path is the ground truth for the
            # mass-action part; the override rows must equal the scalar
            # callable applied to that row.
            single = compiled.propensities(states[row])
            reference = network.propensities(network.vector_to_state(states[row]))
            override_rows = [
                compiled.labels.index(inter0),
                compiled.labels.index(inter1),
            ]
            mass_action = np.ones(len(reference), dtype=bool)
            mass_action[override_rows] = False
            assert np.array_equal(batch[row][mass_action], reference[mass_action])
            assert np.array_equal(batch[row], single)

    def test_scalar_override_falls_back_to_row_loop(self):
        network = self._network()
        label = network.reactions[0].label
        compiled = CompiledNetwork(
            network, overrides={label: lambda state: float(state[0]) + 0.5}
        )
        states = np.array([[3, 2], [5, 1], [0, 4]])
        batch = compiled.propensities_batch(states)
        index = compiled.labels.index(label)
        assert np.array_equal(batch[:, index], states[:, 0] + 0.5)

    def test_wrong_shaped_vectorized_result_falls_back(self):
        network = self._network()
        label = network.reactions[0].label

        def bad_vectorized(states):
            if np.ndim(states) == 2:
                return np.zeros(99)  # wrong length: must be rejected
            return float(states[0])

        compiled = CompiledNetwork(network, overrides={label: bad_vectorized})
        states = np.array([[3, 2], [5, 1], [7, 0]])
        batch = compiled.propensities_batch(states)
        index = compiled.labels.index(label)
        assert np.array_equal(batch[:, index], states[:, 0].astype(float))

    def test_square_batch_skips_ambiguous_vectorized_attempt(self):
        # B == S: a scalar override reading state[0] on a (B, S) matrix
        # would return a plausible-looking length-B vector, so the batch
        # evaluator must not offer it the matrix at all.
        network = self._network()
        label = network.reactions[0].label
        seen_dims = []

        def scalar(state):
            seen_dims.append(np.ndim(state))
            return float(state[1]) * 3.0

        compiled = CompiledNetwork(network, overrides={label: scalar})
        states = np.array([[3, 2], [5, 1]])  # B = S = 2
        batch = compiled.propensities_batch(states)
        index = compiled.labels.index(label)
        assert np.array_equal(batch[:, index], states[:, 1] * 3.0)
        assert set(seen_dims) == {1}

    def test_raising_vectorized_attempt_falls_back(self):
        network = self._network()
        label = network.reactions[0].label

        def strict_scalar(state):
            if np.ndim(state) != 1:
                raise ValueError("scalar override")
            return 7.0

        compiled = CompiledNetwork(network, overrides={label: strict_scalar})
        states = np.array([[3, 2], [5, 1], [7, 0]])
        batch = compiled.propensities_batch(states)
        index = compiled.labels.index(label)
        assert np.array_equal(batch[:, index], np.full(3, 7.0))


class TestOverrideValidation:
    def test_unknown_label_rejected(self):
        from repro.exceptions import ModelError

        network = build_lv_network(beta=1.0, delta=1.0, alpha0=0.5, alpha1=0.5)
        with pytest.raises(ModelError, match="unknown reaction label"):
            CompiledNetwork(network, overrides={"nope": lambda s: 0.0})

    def test_non_callable_rejected(self):
        from repro.exceptions import ModelError

        network = build_lv_network(beta=1.0, delta=1.0, alpha0=0.5, alpha1=0.5)
        label = network.reactions[0].label
        with pytest.raises(ModelError, match="not callable"):
            CompiledNetwork(network, overrides={label: 1.0})
