"""Tests for species and reaction definitions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.exceptions import InvalidReactionError


X = Species("X")
Y = Species("Y")


class TestSpecies:
    def test_equality_by_name(self):
        assert Species("X0") == Species("X0")
        assert Species("X0") != Species("X1")

    def test_metadata_excluded_from_equality(self):
        assert Species("X0", metadata={"role": "majority"}) == Species("X0")

    def test_hashable(self):
        assert len({Species("A"), Species("A"), Species("B")}) == 2

    def test_ordering(self):
        assert Species("A") < Species("B")

    def test_str(self):
        assert str(Species("X0")) == "X0"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Species("")

    def test_whitespace_name_rejected(self):
        with pytest.raises(ValueError):
            Species("X 0")

    def test_with_metadata_merges(self):
        species = Species("X", metadata={"a": 1}).with_metadata(b=2)
        assert species.metadata == {"a": 1, "b": 2}
        assert species == Species("X")


class TestReactionValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(InvalidReactionError):
            Reaction({X: 1}, {}, rate=-1.0)

    def test_negative_stoichiometry_rejected(self):
        with pytest.raises(InvalidReactionError):
            Reaction({X: -1}, {}, rate=1.0)

    def test_non_integer_stoichiometry_rejected(self):
        with pytest.raises(InvalidReactionError):
            Reaction({X: 1.5}, {}, rate=1.0)

    def test_non_species_key_rejected(self):
        with pytest.raises(InvalidReactionError):
            Reaction({"X": 1}, {}, rate=1.0)

    def test_order_above_two_rejected(self):
        with pytest.raises(InvalidReactionError):
            Reaction({X: 2, Y: 1}, {}, rate=1.0)

    def test_default_label_generated(self):
        reaction = Reaction({X: 1}, {X: 2}, rate=1.0)
        assert "X" in reaction.label

    def test_zero_coefficients_dropped(self):
        reaction = Reaction({X: 1, Y: 0}, {X: 2}, rate=1.0)
        assert Y not in reaction.reactants


class TestReactionStructure:
    def test_order_unary(self):
        assert Reaction({X: 1}, {X: 2}, rate=1.0).order == 1

    def test_order_binary_heterogeneous(self):
        reaction = Reaction({X: 1, Y: 1}, {}, rate=1.0)
        assert reaction.order == 2
        assert reaction.is_binary
        assert not reaction.is_homogeneous_pair

    def test_order_binary_homogeneous(self):
        reaction = Reaction({X: 2}, {}, rate=1.0)
        assert reaction.is_homogeneous_pair

    def test_net_change_birth(self):
        assert Reaction({X: 1}, {X: 2}, rate=1.0).net_change() == {X: 1}

    def test_net_change_death(self):
        assert Reaction({X: 1}, {}, rate=1.0).net_change() == {X: -1}

    def test_net_change_nsd_competition(self):
        reaction = Reaction({X: 1, Y: 1}, {X: 1}, rate=1.0)
        assert reaction.net_change() == {Y: -1}

    def test_species_union(self):
        reaction = Reaction({X: 1, Y: 1}, {X: 1}, rate=1.0)
        assert reaction.species == frozenset({X, Y})


class TestReactionKinetics:
    def test_unary_propensity(self):
        assert Reaction({X: 1}, {X: 2}, rate=2.0).propensity({X: 5}) == 10.0

    def test_heterogeneous_propensity(self):
        reaction = Reaction({X: 1, Y: 1}, {}, rate=0.5)
        assert reaction.propensity({X: 4, Y: 3}) == 0.5 * 12

    def test_homogeneous_propensity_uses_pairs(self):
        reaction = Reaction({X: 2}, {}, rate=1.0)
        assert reaction.propensity({X: 4}) == 6.0
        assert reaction.propensity({X: 1}) == 0.0

    def test_zero_order_propensity_is_rate(self):
        reaction = Reaction({}, {X: 1}, rate=3.0)
        assert reaction.propensity({X: 100}) == 3.0

    def test_missing_species_counts_as_zero(self):
        reaction = Reaction({X: 1, Y: 1}, {}, rate=1.0)
        assert reaction.propensity({X: 4}) == 0.0

    def test_can_fire(self):
        reaction = Reaction({X: 2}, {}, rate=1.0)
        assert reaction.can_fire({X: 2})
        assert not reaction.can_fire({X: 1})

    def test_apply(self):
        reaction = Reaction({X: 1, Y: 1}, {X: 1}, rate=1.0)
        assert reaction.apply({X: 3, Y: 2}) == {X: 3, Y: 1}

    def test_apply_rejects_infeasible(self):
        reaction = Reaction({X: 1}, {}, rate=1.0)
        with pytest.raises(InvalidReactionError):
            reaction.apply({X: 0})

    @given(st.integers(min_value=0, max_value=1000), st.floats(min_value=0.0, max_value=100.0))
    def test_unary_propensity_is_rate_times_count(self, count, rate):
        reaction = Reaction({X: 1}, {}, rate=rate)
        assert reaction.propensity({X: count}) == pytest.approx(rate * count)

    @given(st.integers(min_value=0, max_value=1000))
    def test_homogeneous_propensity_matches_pair_count(self, count):
        reaction = Reaction({X: 2}, {}, rate=1.0)
        assert reaction.propensity({X: count}) == pytest.approx(count * (count - 1) / 2)
