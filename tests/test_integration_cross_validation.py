"""Cross-validation integration tests.

These tests tie the independent layers of the library together: the fast
two-species simulator against the generic CRN simulators, Monte-Carlo
estimates against exact first-step solutions, empirical thresholds against the
exact win-probability grid, and the continuous-time process against the
embedded jump chain.  They are the strongest correctness evidence in the suite
because the compared implementations share almost no code.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chains.first_step import exact_majority_probability, exact_win_probability_grid
from repro.consensus.estimator import estimate_majority_probability
from repro.consensus.threshold import ThresholdSearch
from repro.consensus.theory import high_probability_target
from repro.crn.builders import build_lv_network
from repro.kinetics import ConsensusReached, DirectMethodSimulator, JumpChainSimulator
from repro.lv.params import CompetitionMechanism, LVParams
from repro.lv.simulator import LVJumpChainSimulator
from repro.lv.state import LVState


class TestFastSimulatorAgainstGenericCRN:
    """The specialised LV simulator and the generic CRN stack describe one chain."""

    @pytest.mark.parametrize("self_destructive", [True, False], ids=["SD", "NSD"])
    def test_single_step_distributions_match(self, self_destructive):
        params = LVParams(
            beta=0.8,
            delta=1.2,
            alpha0=0.4,
            alpha1=0.6,
            mechanism=(
                CompetitionMechanism.SELF_DESTRUCTIVE
                if self_destructive
                else CompetitionMechanism.NON_SELF_DESTRUCTIVE
            ),
        )
        fast = LVJumpChainSimulator(params)
        network = build_lv_network(
            beta=params.beta,
            delta=params.delta,
            alpha0=params.alpha0,
            alpha1=params.alpha1,
            self_destructive=self_destructive,
        )
        x0, x1 = network.species
        state = LVState(5, 3)
        expected = fast.transition_distribution(state)

        # One-step empirical distribution from the generic jump-chain simulator.
        generic = JumpChainSimulator(network)
        rng = np.random.default_rng(2)
        counts: dict[tuple[int, int], int] = {}
        samples = 3000
        for _ in range(samples):
            trajectory = generic.run({x0: state.x0, x1: state.x1}, max_events=1, rng=rng)
            final = trajectory.final_mapping()
            key = (final[x0], final[x1])
            counts[key] = counts.get(key, 0) + 1
        for target, probability in expected.items():
            assert counts.get(target, 0) / samples == pytest.approx(probability, abs=0.03)

    def test_majority_probability_matches_continuous_time(self, sd_params):
        """rho is invariant between the jump chain and the continuous-time SSA."""
        network = build_lv_network(
            beta=sd_params.beta,
            delta=sd_params.delta,
            alpha0=sd_params.alpha0,
            alpha1=sd_params.alpha1,
        )
        x0, x1 = network.species
        stop = ConsensusReached(x0, x1)
        rng = np.random.default_rng(4)
        runs = 250
        continuous_wins = 0
        for _ in range(runs):
            trajectory = DirectMethodSimulator(network).run(
                {x0: 24, x1: 12}, stop=stop, rng=rng
            )
            final = trajectory.final_mapping()
            continuous_wins += int(final[x0] > 0 and final[x1] == 0)
        continuous_rate = continuous_wins / runs

        exact = exact_majority_probability(sd_params, (24, 12), max_count=100).win_probability
        assert continuous_rate == pytest.approx(exact, abs=0.08)


class TestMonteCarloAgainstExact:
    @pytest.mark.parametrize(
        "mechanism",
        [CompetitionMechanism.SELF_DESTRUCTIVE, CompetitionMechanism.NON_SELF_DESTRUCTIVE],
        ids=["SD", "NSD"],
    )
    def test_estimator_matches_first_step_solution(self, mechanism):
        params = LVParams(beta=1.0, delta=0.5, alpha0=0.5, alpha1=0.5, mechanism=mechanism)
        for a, b in [(10, 6), (16, 4)]:
            exact = exact_majority_probability(params, (a, b), max_count=80).win_probability
            estimate = estimate_majority_probability(
                params, LVState(a, b), num_runs=800, rng=a * 100 + b
            )
            assert estimate.success.lower - 0.03 <= exact <= estimate.success.upper + 0.03

    def test_threshold_probe_consistent_with_exact_grid(self, sd_params):
        """The threshold search's pass/fail decisions agree with the exact grid."""
        n = 24
        grid = exact_win_probability_grid(sd_params, 4 * n)
        target = high_probability_target(n)
        search = ThresholdSearch(sd_params, num_runs=400)
        estimate = search.find(n, rng=3)
        assert estimate.has_threshold

        def exact_at(gap: int) -> float:
            # The search adjusts odd gaps upwards to match the parity of n, so
            # evaluate the exact grid at the configuration actually simulated.
            adjusted = gap if (n + gap) % 2 == 0 else gap + 1
            a = (n + adjusted) // 2
            return float(grid[a, n - a])

        # The exact success probability at the found threshold clears (or is
        # within Monte-Carlo tolerance of) the target, and the gap two below
        # it does not comfortably clear the target.
        assert exact_at(estimate.threshold_gap) >= target - 0.05
        if estimate.threshold_gap - 2 >= 2:
            assert exact_at(estimate.threshold_gap - 2) <= target + 0.02


class TestMechanismSeparationEndToEnd:
    def test_sd_beats_nsd_at_matched_intermediate_gap(self):
        """The paper's qualitative separation at a gap between log^2 n and sqrt(n)."""
        n, gap = 400, 16
        state = LVState.from_gap(n, gap)
        sd = estimate_majority_probability(
            LVParams.self_destructive(beta=1.0, delta=1.0, alpha=1.0),
            state,
            num_runs=400,
            rng=0,
        )
        nsd = estimate_majority_probability(
            LVParams.non_self_destructive(beta=1.0, delta=1.0, alpha=1.0),
            state,
            num_runs=400,
            rng=1,
        )
        assert sd.majority_probability > nsd.majority_probability + 0.15
        assert sd.majority_probability > 0.9

    def test_rate_constants_do_not_change_the_story(self):
        """Theorem 14 holds for any positive constants: vary beta, delta, alpha."""
        n, gap = 256, 30
        state = LVState.from_gap(n, gap)
        for beta, delta, alpha in [(0.5, 2.0, 1.0), (2.0, 0.5, 0.3), (1.0, 1.0, 3.0)]:
            params = LVParams.self_destructive(beta=beta, delta=delta, alpha=alpha)
            estimate = estimate_majority_probability(params, state, num_runs=200, rng=7)
            assert estimate.majority_probability > 0.9
            assert estimate.consensus_rate == 1.0


class TestJumpChainEventBudgetProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        total=st.integers(min_value=8, max_value=120),
        seed=st.integers(min_value=0, max_value=2**31),
        self_destructive=st.booleans(),
    )
    def test_consensus_time_linear_in_population(self, total, seed, self_destructive):
        """T(S) stays within a small multiple of n (Theorem 13a) across random inputs."""
        mechanism = (
            CompetitionMechanism.SELF_DESTRUCTIVE
            if self_destructive
            else CompetitionMechanism.NON_SELF_DESTRUCTIVE
        )
        params = LVParams(beta=1.0, delta=1.0, alpha0=0.5, alpha1=0.5, mechanism=mechanism)
        state = LVState.from_gap(total, total % 2)
        result = LVJumpChainSimulator(params).run(state, rng=seed, max_events=300 * total)
        assert result.reached_consensus, "consensus not reached within 300 n events"
        assert result.bad_noncompetitive_events <= result.individual_events
