"""Tests for reaction networks and the LV network builders."""

from __future__ import annotations

import pytest

from repro.crn.builders import (
    build_birth_death_network,
    build_lv_network,
    build_pure_birth_network,
    build_single_species_logistic_network,
)
from repro.crn.network import ReactionNetwork
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.exceptions import InvalidConfigurationError, ModelError


class TestReactionNetwork:
    def setup_method(self):
        self.x = Species("X")
        self.y = Species("Y")
        self.network = ReactionNetwork(
            species=[self.x, self.y],
            reactions=[
                Reaction({self.x: 1}, {self.x: 2}, rate=1.0, label="birth"),
                Reaction({self.x: 1, self.y: 1}, {}, rate=0.5, label="annihilate"),
            ],
            name="demo",
        )

    def test_counts(self):
        assert self.network.num_species == 2
        assert self.network.num_reactions == 2
        assert len(self.network) == 2

    def test_species_auto_registration(self):
        z = Species("Z")
        network = ReactionNetwork(reactions=[Reaction({z: 1}, {}, rate=1.0)])
        assert z in network.species

    def test_duplicate_label_rejected(self):
        with pytest.raises(ModelError):
            self.network.add_reaction(Reaction({self.x: 1}, {}, rate=1.0, label="birth"))

    def test_reaction_by_label(self):
        assert self.network.reaction_by_label("birth").rate == 1.0
        with pytest.raises(ModelError):
            self.network.reaction_by_label("missing")

    def test_species_index(self):
        assert self.network.species_index(self.x) == 0
        with pytest.raises(ModelError):
            self.network.species_index(Species("missing"))

    def test_state_vector_round_trip(self):
        state = {self.x: 3, self.y: 7}
        vector = self.network.state_to_vector(state)
        assert vector.tolist() == [3, 7]
        assert self.network.vector_to_state(vector) == state

    def test_validate_state_fills_missing(self):
        validated = self.network.validate_state({self.x: 2})
        assert validated[self.y] == 0

    def test_validate_state_rejects_negative(self):
        with pytest.raises(InvalidConfigurationError):
            self.network.validate_state({self.x: -1})

    def test_validate_state_rejects_unknown_species(self):
        with pytest.raises(InvalidConfigurationError):
            self.network.validate_state({Species("Z"): 1})

    def test_vector_wrong_shape_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            self.network.vector_to_state([1, 2, 3])

    def test_propensities(self):
        state = {self.x: 4, self.y: 3}
        propensities = self.network.propensities(state)
        assert propensities.tolist() == [4.0, 6.0]
        assert self.network.total_propensity(state) == 10.0

    def test_stoichiometry_matrix(self):
        matrix = self.network.stoichiometry_matrix()
        assert matrix.shape == (2, 2)
        # birth adds one X; annihilate removes one of each.
        assert matrix[:, 0].tolist() == [1, 0]
        assert matrix[:, 1].tolist() == [-1, -1]

    def test_conserved_total(self):
        assert not self.network.conserved_total()
        x = Species("X")
        swap = ReactionNetwork(
            reactions=[Reaction({x: 2}, {x: 2}, rate=1.0, label="noop")]
        )
        assert swap.conserved_total()

    def test_describe_mentions_reactions(self):
        text = self.network.describe()
        assert "birth" in text and "annihilate" in text


class TestLVNetworkBuilder:
    def test_self_destructive_reaction_count(self):
        network = build_lv_network(beta=1, delta=1, alpha0=0.5, alpha1=0.5)
        # 2 births + 2 deaths + 2 interspecific (no intraspecific).
        assert network.num_reactions == 6

    def test_full_model_has_eight_reactions(self):
        network = build_lv_network(
            beta=1, delta=1, alpha0=0.5, alpha1=0.5, gamma0=0.5, gamma1=0.5
        )
        assert network.num_reactions == 8

    def test_zero_rate_reactions_omitted(self):
        network = build_lv_network(beta=1, delta=0, alpha0=0.5, alpha1=0.0)
        labels = {reaction.label for reaction in network.reactions}
        assert "death:X0" not in labels
        assert "inter:X1" not in labels

    def test_negative_rate_rejected(self):
        with pytest.raises(ModelError):
            build_lv_network(beta=-1, delta=1, alpha0=1, alpha1=1)

    def test_self_destructive_removes_both(self):
        network = build_lv_network(beta=1, delta=1, alpha0=1, alpha1=1)
        reaction = network.reaction_by_label("inter:X0")
        change = reaction.net_change()
        assert set(change.values()) == {-1}
        assert len(change) == 2

    def test_non_self_destructive_removes_victim_only(self):
        network = build_lv_network(
            beta=1, delta=1, alpha0=1, alpha1=1, self_destructive=False
        )
        reaction = network.reaction_by_label("inter:X0")
        x0, x1 = network.species
        assert reaction.net_change() == {x1: -1}

    def test_total_propensity_matches_paper_formula(self):
        beta, delta, alpha0, alpha1, gamma0, gamma1 = 1.0, 0.5, 0.3, 0.7, 0.2, 0.4
        network = build_lv_network(
            beta=beta, delta=delta, alpha0=alpha0, alpha1=alpha1, gamma0=gamma0, gamma1=gamma1
        )
        x0, x1 = network.species
        a, b = 6, 4
        expected = (
            (alpha0 + alpha1) * a * b
            + (beta + delta) * (a + b)
            + gamma0 * a * (a - 1) / 2
            + gamma1 * b * (b - 1) / 2
        )
        assert network.total_propensity({x0: a, x1: b}) == pytest.approx(expected)

    def test_custom_species_names(self):
        network = build_lv_network(
            beta=1, delta=1, alpha0=1, alpha1=1, species_names=("A", "B")
        )
        assert [species.name for species in network.species] == ["A", "B"]


class TestOtherBuilders:
    def test_birth_death_network(self):
        network = build_birth_death_network(birth_rate=0.5, death_rate=1.0)
        assert network.num_reactions == 2
        x = network.species[0]
        assert network.total_propensity({x: 10}) == pytest.approx(15.0)

    def test_pure_birth_network(self):
        network = build_pure_birth_network(birth_rate=2.0)
        assert network.num_reactions == 1

    def test_logistic_network_self_destructive(self):
        network = build_single_species_logistic_network(
            birth_rate=1.0, death_rate=1.0, intra_rate=0.5
        )
        x = network.species[0]
        intra = network.reaction_by_label("intra:X")
        assert intra.net_change() == {x: -2}

    def test_logistic_network_non_self_destructive(self):
        network = build_single_species_logistic_network(
            birth_rate=1.0, death_rate=1.0, intra_rate=0.5, self_destructive=False
        )
        x = network.species[0]
        intra = network.reaction_by_label("intra:X")
        assert intra.net_change() == {x: -1}

    def test_rejects_negative_rates(self):
        with pytest.raises(ModelError):
            build_birth_death_network(birth_rate=1.0, death_rate=-0.5)
