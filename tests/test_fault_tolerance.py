"""Chaos suite: deterministic fault injection and the fault-tolerant executor.

The acceptance gate of the fault-tolerance work: under an injected
:class:`~repro.faults.FaultPlan` — worker crashes, hung tasks, numba
outages, torn journal appends, corrupted chunk payloads — every entry point
completes **bitwise-identically** to a fault-free run, with equal
``events_executed`` meters and equal journaled bytes, across ``jobs`` and
``sweep_batch`` settings.  Faults change *how long* a run takes, never what
it computes.
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    PoisonChunkError,
    ReproError,
    StoreError,
    WorkerCrashError,
)
from repro.experiments.scheduler import (
    FaultTolerance,
    RunHealth,
    SweepScheduler,
)
from repro.experiments.sweep import SweepTask
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
    get_fault_plan,
    injected_faults,
    install_fault_plan,
)
from repro.lv.native import NATIVE_AVAILABLE, NativeEngineUnavailableError
from repro.lv.state import LVState
from repro.store import ExperimentStore, quarantine_path, verify_journal

from test_store import assert_bitwise_equal


def _tasks(sd_params, nsd_params):
    return [
        SweepTask(sd_params, LVState(40, 24), 150, seed=1, label="a"),
        SweepTask(nsd_params, LVState(33, 31), 150, seed=2, label="b"),
        SweepTask(sd_params, LVState(36, 28), 150, seed=3, label="c"),
    ]


def _reference(tasks, **config):
    """Fault-free results plus the events meter they took to compute."""
    scheduler = SweepScheduler(batch_size=64, sweep_batch=64, **config)
    try:
        results = scheduler.run_sweep(tasks)
        return results, scheduler.events_executed
    finally:
        scheduler.shutdown()


class TestFaultSpecValidation:
    def test_rate_must_be_a_probability(self):
        with pytest.raises(ReproError):
            FaultSpec(rate=1.5)
        with pytest.raises(ReproError):
            FaultSpec(rate=-0.1)

    def test_attempts_must_be_positive(self):
        with pytest.raises(ReproError):
            FaultSpec(rate=0.5, attempts=0)

    def test_delay_must_be_non_negative(self):
        with pytest.raises(ReproError):
            FaultSpec(rate=0.5, delay=-1.0)


class TestFaultPlanFiring:
    def test_firing_is_a_pure_function(self):
        plan = FaultPlan(seed=7, crash=FaultSpec(rate=0.5))
        decisions = [plan.should_fire("crash", token) for token in range(200)]
        again = [plan.should_fire("crash", token) for token in range(200)]
        assert decisions == again
        # A 0.5 rate really is partial: some tokens fire, some don't.
        assert any(decisions) and not all(decisions)

    def test_rate_one_fires_only_below_the_attempt_budget(self):
        plan = FaultPlan(seed=1, crash=FaultSpec(rate=1.0, attempts=2))
        assert plan.should_fire("crash", 42, attempt=0)
        assert plan.should_fire("crash", 42, attempt=1)
        assert not plan.should_fire("crash", 42, attempt=2)

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=1)
        assert not any(plan.should_fire("crash", token) for token in range(100))

    def test_seed_changes_the_schedule(self):
        spec = FaultSpec(rate=0.5)
        first = [FaultPlan(seed=1, crash=spec).should_fire("crash", t) for t in range(64)]
        second = [FaultPlan(seed=2, crash=spec).should_fire("crash", t) for t in range(64)]
        assert first != second

    def test_fire_execution_raises_injected_crash_inline(self):
        plan = FaultPlan(seed=1, crash=FaultSpec(rate=1.0))
        with pytest.raises(InjectedWorkerCrash):
            plan.fire_execution(token=5, attempt=0, engine="numpy")
        plan.fire_execution(token=5, attempt=1, engine="numpy")  # retry is clean

    def test_degrade_fires_only_off_the_numpy_engine(self):
        plan = FaultPlan(seed=1, degrade=FaultSpec(rate=1.0))
        with pytest.raises(NativeEngineUnavailableError):
            plan.fire_execution(token=5, attempt=0, engine="numba")
        plan.fire_execution(token=5, attempt=0, engine="numpy")  # nothing to lose

    def test_journal_action_is_attempt_gated(self):
        plan = FaultPlan(seed=1, torn_append=FaultSpec(rate=1.0))
        assert plan.journal_action("key", attempt=0) == "torn"
        assert plan.journal_action("key", attempt=1) is None


class TestFaultPlanSerialisation:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=9,
            crash=FaultSpec(rate=0.2, fatal=True),
            hang=FaultSpec(rate=0.1, delay=2.0),
            corrupt_chunk=FaultSpec(rate=1.0, attempts=2),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ReproError, match="unknown fault plan field"):
            FaultPlan.from_json('{"seed": 1, "explode": {"rate": 1.0}}')

    def test_invalid_spec_field_is_rejected(self):
        with pytest.raises(ReproError, match="invalid fault spec"):
            FaultPlan.from_json('{"crash": {"frequency": 1.0}}')

    def test_malformed_json_is_rejected(self):
        with pytest.raises(ReproError, match="invalid fault plan JSON"):
            FaultPlan.from_json("{not json")
        with pytest.raises(ReproError, match="must be a JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_environment_variable_is_consulted(self, monkeypatch):
        plan = FaultPlan(seed=4, crash=FaultSpec(rate=0.5))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        assert get_fault_plan() == plan
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert get_fault_plan() is None

    def test_installed_plan_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", FaultPlan(seed=1, crash=FaultSpec(rate=1.0)).to_json()
        )
        installed = FaultPlan(seed=2)
        with injected_faults(installed):
            assert get_fault_plan() == installed
        assert get_fault_plan().seed == 1

    def test_injected_faults_restores_the_previous_plan(self):
        outer = FaultPlan(seed=1)
        install_fault_plan(outer)
        try:
            with injected_faults(FaultPlan(seed=2)):
                assert get_fault_plan().seed == 2
            assert get_fault_plan() is outer
        finally:
            install_fault_plan(None)


class TestFaultTolerancePolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(task_timeout=0.0),
            dict(task_timeout=-5.0),
            dict(on_fault="explode"),
            dict(backoff_base=-0.1),
            dict(backoff_base=1.0, backoff_cap=0.5),
        ],
    )
    def test_invalid_policies_are_rejected(self, kwargs):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            FaultTolerance(**kwargs)

    def test_backoff_is_deterministic_and_capped(self):
        policy = FaultTolerance(backoff_base=0.1, backoff_cap=0.5)
        assert policy.backoff_delay("token", 1) == policy.backoff_delay("token", 1)
        for attempt in range(1, 12):
            delay = policy.backoff_delay("token", attempt)
            assert 0.0 < delay <= policy.backoff_cap

    def test_zero_base_disables_backoff(self):
        policy = FaultTolerance(backoff_base=0.0, backoff_cap=0.0)
        assert policy.backoff_delay("token", 3) == 0.0

    def test_scheduler_rejects_non_policy(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            SweepScheduler(fault_tolerance="retry")


class TestRunHealth:
    def test_clean_run_reports_no_faults(self):
        health = RunHealth()
        assert health.faults_handled == 0
        assert health.summary() == "no faults"

    def test_summary_lists_what_happened(self):
        health = RunHealth(retries=2, timeouts=1, pool_rebuilds=1)
        health.quarantined.append("key")
        assert health.faults_handled == 5
        summary = health.summary()
        assert "2 retries" in summary
        assert "1 timeout(s)" in summary
        assert "1 pool rebuild(s)" in summary
        assert "1 chunk(s) quarantined" in summary


#: Quick backoff so chaos tests don't sleep their way through the suite.
FAST = FaultTolerance(max_retries=2, backoff_base=0.001, backoff_cap=0.01)


class TestInlineChaos:
    """jobs=1: the inline arm of the fault-tolerant executor."""

    def test_crashes_retry_to_bitwise_identical_results(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params)
        reference, events = _reference(tasks)
        scheduler = SweepScheduler(batch_size=64, sweep_batch=64, fault_tolerance=FAST)
        with injected_faults(FaultPlan(seed=5, crash=FaultSpec(rate=1.0))):
            faulted = scheduler.run_sweep(tasks)
        assert scheduler.health.retries > 0
        assert scheduler.health.faults_handled == scheduler.health.retries
        assert scheduler.events_executed == events
        for expected, actual in zip(reference, faulted):
            assert_bitwise_equal(expected, actual)

    def test_partial_crash_rate_also_converges(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params)
        reference, events = _reference(tasks)
        scheduler = SweepScheduler(batch_size=64, sweep_batch=64, fault_tolerance=FAST)
        with injected_faults(FaultPlan(seed=11, crash=FaultSpec(rate=0.5))):
            faulted = scheduler.run_sweep(tasks)
        assert scheduler.events_executed == events
        for expected, actual in zip(reference, faulted):
            assert_bitwise_equal(expected, actual)

    def test_run_ensembles_crashes_retry_bitwise(self, sd_params):
        clean = SweepScheduler(batch_size=64)
        reference = clean.run_ensembles(sd_params, LVState(24, 16), 200, rng=5)
        scheduler = SweepScheduler(batch_size=64, fault_tolerance=FAST)
        with injected_faults(FaultPlan(seed=5, crash=FaultSpec(rate=1.0))):
            faulted = scheduler.run_ensembles(sd_params, LVState(24, 16), 200, rng=5)
        assert scheduler.health.retries > 0
        assert scheduler.events_executed == clean.events_executed
        assert_bitwise_equal(reference, faulted)

    def test_adaptive_sweep_crashes_retry_bitwise(self, sd_params, nsd_params):
        from repro.analysis.statistics import PrecisionTarget

        target = PrecisionTarget(ci_half_width=0.06, min_replicates=64, max_replicates=256)
        tasks = _tasks(sd_params, nsd_params)
        clean = SweepScheduler(wave_quantum=64)
        reference = clean.run_sweep_adaptive(tasks, target=target)
        reference_report = clean.last_adaptive_report
        scheduler = SweepScheduler(wave_quantum=64, fault_tolerance=FAST)
        with injected_faults(FaultPlan(seed=6, crash=FaultSpec(rate=0.5))):
            faulted = scheduler.run_sweep_adaptive(tasks, target=target)
        assert scheduler.events_executed == clean.events_executed
        assert scheduler.last_adaptive_report == reference_report
        for expected, actual in zip(reference, faulted):
            assert_bitwise_equal(expected, actual)

    def test_poison_chunk_quarantined_after_budget(self, tmp_path, sd_params, nsd_params):
        """A chunk that keeps failing is quarantined; the rest completes."""
        from repro.experiments.sweep import pack_members, plan_members

        tasks = _tasks(sd_params, nsd_params)
        store = ExperimentStore(tmp_path)
        scheduler = SweepScheduler(
            batch_size=64,
            sweep_batch=64,
            store=store,
            fault_tolerance=FaultTolerance(max_retries=1, backoff_base=0.0),
        )
        # Exactly one poisoned unit: search the pure firing function for a
        # plan seed whose crash fires on a single injection token (the first
        # member seed of each packed mega-batch), at every attempt.
        tokens = [
            plan[0].seed
            for plan in pack_members(plan_members(tasks, batch_size=64), 64)
        ]
        spec = FaultSpec(rate=0.2, attempts=99)
        plan_seed = next(
            seed
            for seed in range(10_000)
            if sum(
                FaultPlan(seed=seed, crash=spec).should_fire("crash", token)
                for token in tokens
            )
            == 1
        )
        plan = FaultPlan(seed=plan_seed, crash=spec)
        with injected_faults(plan), pytest.raises(PoisonChunkError) as excinfo:
            scheduler.run_sweep(tasks)
        assert excinfo.value.chunk_keys
        assert scheduler.health.quarantined
        assert "rerun to retry only the quarantined chunks" in str(excinfo.value)
        # Every healthy chunk was journaled before the error surfaced.
        assert store.stats.chunk_writes > 0
        total_chunks = store.stats.chunk_writes + len(excinfo.value.chunk_keys)
        assert store.stats.chunk_misses == total_chunks
        # A fault-free rerun completes just the quarantined chunks, bitwise.
        healthy_writes = store.stats.chunk_writes
        reference, _ = _reference(tasks)
        resumed = SweepScheduler(batch_size=64, sweep_batch=64, store=store).run_sweep(tasks)
        assert store.stats.chunk_hits == healthy_writes
        assert store.stats.chunk_writes == total_chunks
        for expected, actual in zip(reference, resumed):
            assert_bitwise_equal(expected, actual)

    def test_on_fault_fail_raises_actionable_error(self, sd_params, nsd_params):
        scheduler = SweepScheduler(
            batch_size=64,
            sweep_batch=64,
            fault_tolerance=FaultTolerance(on_fault="fail"),
        )
        with injected_faults(FaultPlan(seed=5, crash=FaultSpec(rate=1.0))):
            with pytest.raises(WorkerCrashError, match="--jobs 1") as excinfo:
                scheduler.run_sweep(_tasks(sd_params, nsd_params))
        assert "--max-retries" in str(excinfo.value)

    def test_mid_run_native_outage_degrades_to_numpy(self, recwarn):
        """A numba outage mid-run falls back to numpy without losing the unit."""
        calls = []

        def fn(index, engine, attempt):
            calls.append((index, engine, attempt))
            if engine != "numpy":
                raise NativeEngineUnavailableError("injected outage")
            return index * 10

        collected = {}
        scheduler = SweepScheduler(engine="auto", fault_tolerance=FAST)
        scheduler._execute_faulted(
            [(0,), (1,), (2,)],
            fn,
            lambda index: (f"unit-{index}",),
            lambda index, result: collected.__setitem__(index, result),
        )
        assert collected == {0: 0, 1: 10, 2: 20}
        assert scheduler.health.degradations == 1
        assert scheduler._effective_engine() == "numpy"
        # The failed unit re-executed at the same attempt number (degrade is
        # not a retry), and later units dispatched straight to numpy.
        assert calls == [(0, "auto", 0), (0, "numpy", 0), (1, "numpy", 0), (2, "numpy", 0)]
        assert any("falling" in str(w.message) for w in recwarn.list)

    @pytest.mark.skipif(not NATIVE_AVAILABLE, reason="needs the numba native engine")
    def test_injected_numba_outage_end_to_end(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params)
        reference, events = _reference(tasks)
        scheduler = SweepScheduler(
            batch_size=64, sweep_batch=64, engine="auto", fault_tolerance=FAST
        )
        with injected_faults(FaultPlan(seed=5, degrade=FaultSpec(rate=1.0))):
            with pytest.warns(RuntimeWarning, match="numpy engine"):
                faulted = scheduler.run_sweep(tasks)
        assert scheduler.health.degradations == 1
        assert scheduler.events_executed == events
        for expected, actual in zip(reference, faulted):
            assert_bitwise_equal(expected, actual)


class TestPoolChaos:
    """jobs>1: the pool arm — explicit futures, watchdog, pool rebuilds."""

    def test_worker_crashes_retry_to_bitwise_results(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params)
        reference, events = _reference(tasks)
        scheduler = SweepScheduler(
            jobs=2, batch_size=64, sweep_batch=64, fault_tolerance=FAST
        )
        try:
            with injected_faults(FaultPlan(seed=5, crash=FaultSpec(rate=1.0))):
                faulted = scheduler.run_sweep(tasks)
        finally:
            scheduler.shutdown()
        assert scheduler.health.retries > 0
        assert scheduler.events_executed == events
        for expected, actual in zip(reference, faulted):
            assert_bitwise_equal(expected, actual)

    def test_fatal_crashes_break_and_rebuild_the_pool(
        self, monkeypatch, sd_params, nsd_params
    ):
        """``fatal`` crashes kill real workers: a genuine BrokenProcessPool.

        The plan travels via ``REPRO_FAULT_PLAN`` — the same channel the CI
        chaos job uses — proving the injection reaches forked workers.
        """
        tasks = _tasks(sd_params, nsd_params)
        reference, events = _reference(tasks)
        plan = FaultPlan(seed=5, crash=FaultSpec(rate=0.5, fatal=True))
        # A pool break costs every in-flight unit an attempt (the culprit is
        # indistinguishable), so innocents caught near several breaks need a
        # deeper budget than the per-unit fault count suggests.
        scheduler = SweepScheduler(
            jobs=2,
            batch_size=64,
            sweep_batch=64,
            fault_tolerance=FaultTolerance(
                max_retries=16, backoff_base=0.001, backoff_cap=0.01
            ),
        )
        try:
            monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
            faulted = scheduler.run_sweep(tasks)
        finally:
            scheduler.shutdown()
        assert scheduler.health.pool_rebuilds >= 1
        assert scheduler.events_executed == events
        for expected, actual in zip(reference, faulted):
            assert_bitwise_equal(expected, actual)

    def test_hung_tasks_hit_the_watchdog_and_retry(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params)
        reference, events = _reference(tasks)
        plan = FaultPlan(seed=5, hang=FaultSpec(rate=0.5, delay=60.0))
        scheduler = SweepScheduler(
            jobs=2,
            batch_size=64,
            sweep_batch=64,
            fault_tolerance=FaultTolerance(
                max_retries=2, task_timeout=1.0, backoff_base=0.001, backoff_cap=0.01
            ),
        )
        try:
            with injected_faults(plan):
                faulted = scheduler.run_sweep(tasks)
        finally:
            scheduler.shutdown()
        assert scheduler.health.timeouts >= 1
        assert scheduler.health.pool_rebuilds >= 1
        assert scheduler.events_executed == events
        for expected, actual in zip(reference, faulted):
            assert_bitwise_equal(expected, actual)

    def test_store_backed_pool_chaos_journals_identically(
        self, tmp_path, sd_params, nsd_params
    ):
        """Crashes under jobs=2 with a store: journal bytes match a clean run."""
        tasks = _tasks(sd_params, nsd_params)
        clean_store = ExperimentStore(tmp_path / "clean")
        SweepScheduler(batch_size=64, sweep_batch=64, store=clean_store).run_sweep(tasks)
        clean_store.close()

        chaos_store = ExperimentStore(tmp_path / "chaos")
        scheduler = SweepScheduler(
            jobs=2,
            batch_size=64,
            sweep_batch=64,
            store=chaos_store,
            fault_tolerance=FAST,
        )
        try:
            with injected_faults(FaultPlan(seed=5, crash=FaultSpec(rate=1.0))):
                scheduler.run_sweep(tasks)
        finally:
            scheduler.shutdown()
        chaos_store.close()
        clean = (tmp_path / "clean" / "journal.jsonl").read_bytes()
        chaos = (tmp_path / "chaos" / "journal.jsonl").read_bytes()
        assert sorted(clean.splitlines()) == sorted(chaos.splitlines())


class TestStoreChaos:
    """Injected journal faults: torn appends and corrupted payloads."""

    def test_torn_appends_are_repaired_in_place(self, tmp_path, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params)
        reference, _ = _reference(tasks)
        store = ExperimentStore(tmp_path)
        scheduler = SweepScheduler(batch_size=64, sweep_batch=64, store=store)
        with injected_faults(FaultPlan(seed=5, torn_append=FaultSpec(rate=1.0))):
            faulted = scheduler.run_sweep(tasks)
        assert store.stats.journal_repairs == store.stats.chunk_writes
        for expected, actual in zip(reference, faulted):
            assert_bitwise_equal(expected, actual)
        store.close()
        # The journal holds every chunk, framed cleanly: replay everything.
        replay_store = ExperimentStore(tmp_path)
        replayer = SweepScheduler(batch_size=64, sweep_batch=64, store=replay_store)
        replayed = replayer.run_sweep(tasks)
        assert replay_store.stats.chunk_misses == 0
        assert replayer.events_executed == 0
        for expected, actual in zip(reference, replayed):
            assert_bitwise_equal(expected, actual)

    def test_corrupted_chunks_quarantine_and_recompute(
        self, tmp_path, sd_params, nsd_params
    ):
        tasks = _tasks(sd_params, nsd_params)
        reference, _ = _reference(tasks)
        store = ExperimentStore(tmp_path)
        # Session 1: every chunk's payload is silently corrupted on disk.
        with injected_faults(FaultPlan(seed=5, corrupt_chunk=FaultSpec(rate=1.0))):
            corrupted = SweepScheduler(
                batch_size=64, sweep_batch=64, store=store
            ).run_sweep(tasks)
        written = store.stats.chunk_writes
        store.close()
        # In-memory results were computed before the append and stay correct.
        for expected, actual in zip(reference, corrupted):
            assert_bitwise_equal(expected, actual)
        # Offline audit sees every record as corrupt.
        report = verify_journal(tmp_path / "journal.jsonl")
        assert not report.ok
        assert len(report.issues) == written
        # Session 2: corruption is healed to the sidecar and every chunk is
        # recomputed — bitwise-identically — then journaled cleanly.
        store = ExperimentStore(tmp_path)
        scheduler = SweepScheduler(batch_size=64, sweep_batch=64, store=store)
        recovered = scheduler.run_sweep(tasks)
        assert store.stats.chunk_hits == 0
        assert store.stats.chunks_quarantined == written
        store.close()
        for expected, actual in zip(reference, recovered):
            assert_bitwise_equal(expected, actual)
        assert quarantine_path(tmp_path / "journal.jsonl").exists()
        final = verify_journal(tmp_path / "journal.jsonl")
        assert final.ok
        assert final.intact_records == written
        assert final.quarantined_records == written

    def test_everything_at_once(self, tmp_path, sd_params, nsd_params):
        """Crashes, short hangs, torn and corrupt appends in one run."""
        tasks = _tasks(sd_params, nsd_params)
        reference, events = _reference(tasks)
        plan = FaultPlan(
            seed=13,
            crash=FaultSpec(rate=0.4),
            hang=FaultSpec(rate=0.3, delay=0.01),
            torn_append=FaultSpec(rate=0.4),
            corrupt_chunk=FaultSpec(rate=0.4),
        )
        store = ExperimentStore(tmp_path)
        scheduler = SweepScheduler(
            batch_size=64, sweep_batch=64, store=store, fault_tolerance=FAST
        )
        with injected_faults(plan):
            faulted = scheduler.run_sweep(tasks)
        assert scheduler.events_executed == events
        for expected, actual in zip(reference, faulted):
            assert_bitwise_equal(expected, actual)
        store.close()
        # A follow-up clean run replays the intact records and recomputes the
        # corrupted ones, converging on the same bytes.
        store = ExperimentStore(tmp_path)
        recovered = SweepScheduler(
            batch_size=64, sweep_batch=64, store=store
        ).run_sweep(tasks)
        store.close()
        for expected, actual in zip(reference, recovered):
            assert_bitwise_equal(expected, actual)
        assert verify_journal(tmp_path / "journal.jsonl").ok

    def test_injected_torn_write_is_a_store_error(self):
        from repro.faults import InjectedTornWrite

        assert issubclass(InjectedTornWrite, StoreError)
        assert not issubclass(InjectedWorkerCrash, ReproError)


class TestRunSweepJobsEquivalence:
    """The chaos contract holds across execution configurations."""

    @pytest.mark.parametrize(
        "config",
        [dict(jobs=2), dict(sweep_batch=96), dict(jobs=2, sweep_batch=96)],
        ids=["jobs-2", "sweep-batch-96", "both"],
    )
    def test_faulted_runs_match_reference_across_configs(
        self, config, sd_params, nsd_params
    ):
        tasks = _tasks(sd_params, nsd_params)
        reference, events = _reference(tasks)
        scheduler = SweepScheduler(
            batch_size=64, fault_tolerance=FAST, **{**dict(sweep_batch=64), **config}
        )
        try:
            with injected_faults(FaultPlan(seed=21, crash=FaultSpec(rate=0.6))):
                faulted = scheduler.run_sweep(tasks)
        finally:
            scheduler.shutdown()
        assert scheduler.events_executed == events
        for expected, actual in zip(reference, faulted):
            assert_bitwise_equal(expected, actual)

    def test_tau_backend_faulted_run_matches_reference(self, sd_params):
        tasks = [
            SweepTask(sd_params, LVState(30_000, 29_000), 8, seed=3, backend="tau"),
            SweepTask(sd_params, LVState(31_000, 29_500), 8, seed=4, backend="tau"),
        ]
        clean = SweepScheduler(backend="tau")
        reference = clean.run_sweep(tasks)
        scheduler = SweepScheduler(backend="tau", fault_tolerance=FAST)
        with injected_faults(FaultPlan(seed=5, crash=FaultSpec(rate=1.0))):
            faulted = scheduler.run_sweep(tasks)
        assert scheduler.health.retries > 0
        assert scheduler.events_executed == clean.events_executed
        for expected, actual in zip(reference, faulted):
            assert_bitwise_equal(expected, actual)
