"""Tests for the statistics, concentration, scaling, and table-rendering utilities."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.concentration import (
    chernoff_lower_tail,
    chernoff_sample_bound,
    chernoff_upper_tail,
    hoeffding_two_sided,
)
from repro.analysis.scaling import (
    CANDIDATE_LAWS,
    ScalingLaw,
    fit_scaling_law,
    select_scaling_law,
)
from repro.analysis.statistics import (
    binomial_estimate,
    bootstrap_mean_interval,
    required_samples,
    wilson_half_width,
    wilson_interval,
)
from repro.analysis.tables import format_csv, format_markdown_table, format_table
from repro.exceptions import EstimationError


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high

    def test_bounds_within_unit_interval(self):
        assert wilson_interval(0, 50) == pytest.approx(
            (0.0, pytest.approx(0.08, abs=0.05)), abs=0.1
        )
        low, high = wilson_interval(50, 50)
        assert high == 1.0 and low > 0.9

    def test_narrower_with_more_samples(self):
        narrow = wilson_interval(800, 1000)
        wide = wilson_interval(80, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            wilson_interval(5, 0)
        with pytest.raises(EstimationError):
            wilson_interval(-1, 10)
        with pytest.raises(EstimationError):
            wilson_interval(11, 10)
        with pytest.raises(EstimationError):
            wilson_interval(5, 10, confidence=1.2)

    @settings(max_examples=50, deadline=None)
    @given(
        successes=st.integers(min_value=0, max_value=500),
        extra=st.integers(min_value=0, max_value=500),
    )
    def test_interval_always_valid(self, successes, extra):
        trials = successes + extra
        if trials == 0:
            return
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0

    def test_degenerate_inputs_raise_value_error(self):
        """The validation errors double as ValueError for non-library callers."""
        with pytest.raises(ValueError):
            wilson_interval(7, 5)
        with pytest.raises(ValueError):
            wilson_interval(-1, 5)
        with pytest.raises(ValueError):
            wilson_half_width(-2, 10)
        with pytest.raises(ValueError):
            wilson_half_width(11, 10)
        with pytest.raises(ValueError):
            wilson_half_width(5, 0)

    def test_boundary_success_counts_are_valid(self):
        """0 and `trials` successes yield finite in-range intervals, not errors."""
        low, high = wilson_interval(0, 80)
        assert low == 0.0 and 0.0 < high < 0.1
        low, high = wilson_interval(80, 80)
        assert 0.9 < low < 1.0 and high == 1.0
        assert 0.0 < wilson_half_width(0, 80) < wilson_half_width(40, 80)
        assert 0.0 < wilson_half_width(80, 80) < wilson_half_width(40, 80)

    def test_statistics_doctests_pass(self):
        """The documented degenerate/boundary examples actually run."""
        import doctest

        from repro.analysis import statistics

        outcome = doctest.testmod(statistics)
        assert outcome.attempted > 0
        assert outcome.failed == 0

    def test_binomial_estimate_bundle(self):
        estimate = binomial_estimate(90, 100)
        assert estimate.estimate == pytest.approx(0.9)
        assert estimate.excludes(0.5)
        assert not estimate.excludes(0.9)
        assert estimate.half_width > 0
        assert "90/100" in str(estimate)


class TestBootstrapAndPlanning:
    def test_bootstrap_interval_contains_mean(self):
        samples = np.random.default_rng(0).exponential(2.0, size=400)
        low, high = bootstrap_mean_interval(samples, rng=1)
        assert low < samples.mean() < high

    def test_bootstrap_rejects_empty(self):
        with pytest.raises(EstimationError):
            bootstrap_mean_interval(np.array([]))

    def test_required_samples_monotone(self):
        assert required_samples(0.01) > required_samples(0.05)
        with pytest.raises(EstimationError):
            required_samples(0.0)


class TestConcentrationBounds:
    def test_chernoff_upper_tail_decreases_with_expectation(self):
        assert chernoff_upper_tail(100, 0.5) < chernoff_upper_tail(10, 0.5)

    def test_chernoff_upper_matches_formula(self):
        assert chernoff_upper_tail(50, 0.2) == pytest.approx(math.exp(-50 * 0.04 / 2.2))

    def test_chernoff_lower_matches_formula(self):
        assert chernoff_lower_tail(50, 0.2) == pytest.approx(math.exp(-50 * 0.04 / 2))

    def test_bounds_capped_at_one(self):
        assert hoeffding_two_sided(10, 0.0) == 1.0
        assert hoeffding_two_sided(1000, 0.1) == 1.0
        assert chernoff_upper_tail(0.001, 0.001) <= 1.0

    def test_hoeffding_matches_formula(self):
        assert hoeffding_two_sided(100, 40) == pytest.approx(2 * math.exp(-1600 / 200))

    def test_invalid_arguments(self):
        with pytest.raises(EstimationError):
            chernoff_upper_tail(-1, 0.5)
        with pytest.raises(EstimationError):
            chernoff_lower_tail(10, 1.5)
        with pytest.raises(EstimationError):
            hoeffding_two_sided(0, 1.0)

    def test_sample_bound_inverts_upper_tail(self):
        deviation = chernoff_sample_bound(100, 0.01)
        epsilon = deviation / 100
        assert chernoff_upper_tail(100, epsilon) <= 0.0101

    def test_empirical_tail_never_exceeds_hoeffding(self):
        """Empirical ±1 random-walk tails respect Lemma 2 (sanity check on both sides)."""
        rng = np.random.default_rng(3)
        n, runs, t = 200, 2000, 30
        sums = rng.choice([-1, 1], size=(runs, n)).sum(axis=1)
        empirical = np.mean(np.abs(sums) >= t)
        assert empirical <= hoeffding_two_sided(n, t) + 0.02


class TestScalingLaws:
    def test_candidate_laws_cover_paper_shapes(self):
        names = {law.name for law in CANDIDATE_LAWS}
        assert {"log^2 n", "sqrt(n)", "sqrt(n log n)", "n"} <= names

    def test_fit_recovers_coefficient(self):
        law = ScalingLaw("sqrt(n)", math.sqrt)
        sizes = [64, 128, 256, 512, 1024]
        thresholds = [3.0 * math.sqrt(n) for n in sizes]
        fit = fit_scaling_law(sizes, thresholds, law)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-6)
        assert fit.log_rmse == pytest.approx(0.0, abs=1e-9)
        assert fit.predict(2048) == pytest.approx(3.0 * math.sqrt(2048), rel=1e-6)

    def test_select_identifies_generating_law(self):
        sizes = [64, 128, 256, 512, 1024, 2048]
        rng = np.random.default_rng(0)
        polylog = [2.0 * math.log(n) ** 2 * rng.uniform(0.95, 1.05) for n in sizes]
        best = select_scaling_law(sizes, polylog)[0]
        assert best.law.name in {"log^2 n", "log n"}

        sqrt_data = [0.8 * math.sqrt(n) * rng.uniform(0.95, 1.05) for n in sizes]
        best = select_scaling_law(sizes, sqrt_data)[0]
        assert best.law.name in {"sqrt(n)", "sqrt(n log n)"}

    def test_fit_rejects_bad_inputs(self):
        law = CANDIDATE_LAWS[0]
        with pytest.raises(EstimationError):
            fit_scaling_law([], [], law)
        with pytest.raises(EstimationError):
            fit_scaling_law([1, 2], [1.0, 2.0], law)  # sizes must exceed 1
        with pytest.raises(EstimationError):
            fit_scaling_law([10, 20], [1.0, -2.0], law)

    def test_select_requires_candidates(self):
        with pytest.raises(EstimationError):
            select_scaling_law([10, 20], [1.0, 2.0], candidates=[])


class TestTableRendering:
    ROWS = [
        {"n": 64, "rho": 0.5, "ok": True},
        {"n": 128, "rho": 0.875, "ok": False},
    ]

    def test_plain_table_alignment(self):
        text = format_table(self.ROWS, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "n" in lines[1] and "rho" in lines[1]
        assert len(lines) == 2 + 1 + len(self.ROWS)

    def test_markdown_table(self):
        text = format_markdown_table(self.ROWS)
        assert text.splitlines()[0].startswith("| n |")
        assert "| 64 |" in text

    def test_csv_output(self):
        text = format_csv(self.ROWS)
        assert text.splitlines()[0] == "n,rho,ok"
        assert "64,0.5,yes" in text

    def test_sequence_rows_require_columns(self):
        with pytest.raises(ValueError):
            format_table([[1, 2], [3, 4]])
        text = format_table([[1, 2], [3, 4]], columns=["a", "b"])
        assert "a" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table([[1, 2, 3]], columns=["a", "b"])

    def test_empty_rows_need_columns(self):
        with pytest.raises(ValueError):
            format_table([])
        assert "a" in format_table([], columns=["a"])

    def test_none_rendering(self):
        text = format_table([{"a": None}])
        assert "-" in text
