"""Tests for :mod:`repro.store.merge` — journal union — and multi-source reads.

Edge cases the distributed workflow hits in practice: overlapping shards
(idempotent skip), conflicting payloads (hard error naming the key), shard
journals with quarantine sidecars, torn tails from killed shard writers,
and the read-only ``read_sources`` view over unmerged shard caches.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import StoreError
from repro.experiments.scheduler import SweepScheduler
from repro.experiments.sweep import SweepTask
from repro.lv.state import LVState
from repro.store import ChunkJournal, ExperimentStore, merge_cache, quarantine_path

from test_store import assert_bitwise_equal


def _write_journal(path, records):
    """Author a shard journal from ``(key, payload)`` pairs."""
    journal = ChunkJournal(path / "journal.jsonl")
    try:
        for key, payload in records:
            journal.append(key, payload, label=f"label-{key}")
    finally:
        journal.close()


def _journal_payloads(path):
    """``{key: canonical payload}`` of every record in a journal file."""
    contents = {}
    for line in (path / "journal.jsonl").read_text().splitlines():
        record = json.loads(line)
        contents[record["key"]] = json.dumps(record["payload"], sort_keys=True)
    return contents


class TestMergeCache:
    def test_disjoint_union(self, tmp_path):
        _write_journal(tmp_path / "a", [("k1", {"v": 1}), ("k2", {"v": 2})])
        _write_journal(tmp_path / "b", [("k3", {"v": 3})])
        report = merge_cache(tmp_path / "dst", [tmp_path / "a", tmp_path / "b"])
        assert report.chunks_added == 3
        assert report.chunks_skipped == 0
        assert set(_journal_payloads(tmp_path / "dst")) == {"k1", "k2", "k3"}

    def test_overlapping_identical_chunks_are_idempotent(self, tmp_path):
        _write_journal(tmp_path / "a", [("k1", {"v": 1}), ("k2", {"v": 2})])
        _write_journal(tmp_path / "b", [("k2", {"v": 2}), ("k3", {"v": 3})])
        report = merge_cache(tmp_path / "dst", [tmp_path / "a", tmp_path / "b"])
        assert report.chunks_added == 3
        assert report.chunks_skipped == 1
        again = merge_cache(tmp_path / "dst", [tmp_path / "a", tmp_path / "b"])
        assert again.chunks_added == 0
        assert again.chunks_skipped == 4

    def test_conflicting_payload_is_a_hard_error_naming_the_key(self, tmp_path):
        _write_journal(tmp_path / "a", [("shared", {"v": 1})])
        _write_journal(tmp_path / "b", [("shared", {"v": 999})])
        merge_cache(tmp_path / "dst", [tmp_path / "a"])
        with pytest.raises(StoreError, match="merge conflict for chunk shared"):
            merge_cache(tmp_path / "dst", [tmp_path / "b"])
        # Nothing landed from the conflicting source; the merged store is
        # unchanged and a corrected re-merge remains possible.
        assert _journal_payloads(tmp_path / "dst") == {"shared": '{"v": 1}'}

    def test_differing_metadata_with_equal_payload_is_not_a_conflict(self, tmp_path):
        journal = ChunkJournal(tmp_path / "a" / "journal.jsonl")
        journal.append("k1", {"v": 1}, label="shard-a")
        journal.close()
        journal = ChunkJournal(tmp_path / "b" / "journal.jsonl")
        journal.append("k1", {"v": 1}, label="shard-b")
        journal.close()
        report = merge_cache(tmp_path / "dst", [tmp_path / "a", tmp_path / "b"])
        assert report.chunks_added == 1
        assert report.chunks_skipped == 1

    def test_corrupt_source_records_are_skipped_and_counted(self, tmp_path):
        _write_journal(tmp_path / "a", [("k1", {"v": 1}), ("k2", {"v": 2})])
        journal_path = tmp_path / "a" / "journal.jsonl"
        lines = journal_path.read_bytes().splitlines(keepends=True)
        # Quiet bit rot: valid JSON line whose checksum no longer matches.
        lines[0] = lines[0].replace(b'"v":1', b'"v":7')
        journal_path.write_bytes(b"".join(lines))
        report = merge_cache(tmp_path / "dst", [tmp_path / "a"])
        assert report.corrupt_skipped == 1
        assert report.chunks_added == 1
        assert set(_journal_payloads(tmp_path / "dst")) == {"k2"}

    def test_torn_source_tail_ends_the_scan_cleanly(self, tmp_path):
        _write_journal(tmp_path / "a", [("k1", {"v": 1}), ("k2", {"v": 2})])
        journal_path = tmp_path / "a" / "journal.jsonl"
        content = journal_path.read_bytes()
        # Kill the shard writer mid-append: half a record, no newline.
        journal_path.write_bytes(content + b'{"key":"k3","payl')
        report = merge_cache(tmp_path / "dst", [tmp_path / "a"])
        assert report.chunks_added == 2
        assert report.corrupt_skipped == 0
        assert set(_journal_payloads(tmp_path / "dst")) == {"k1", "k2"}

    def test_quarantine_sidecar_bearing_source_merges(self, tmp_path):
        # A shard that hit corruption healed on its next append: the journal
        # holds only intact records and the sidecar holds the evidence.
        _write_journal(tmp_path / "a", [("k1", {"v": 1})])
        journal_path = tmp_path / "a" / "journal.jsonl"
        lines = journal_path.read_bytes()
        journal_path.write_bytes(lines.replace(b'"v":1', b'"v":7'))
        journal = ChunkJournal(journal_path)
        journal.append("k2", {"v": 2})  # append path quarantines the rot
        journal.close()
        assert quarantine_path(journal_path).exists()
        report = merge_cache(tmp_path / "dst", [tmp_path / "a"])
        assert report.chunks_added == 1
        assert set(_journal_payloads(tmp_path / "dst")) == {"k2"}
        # The sidecar is shard-local evidence, not mergeable data.
        assert not quarantine_path(tmp_path / "dst" / "journal.jsonl").exists()

    def test_torn_destination_tail_heals_during_merge(self, tmp_path):
        _write_journal(tmp_path / "dst", [("k1", {"v": 1})])
        destination_journal = tmp_path / "dst" / "journal.jsonl"
        destination_journal.write_bytes(
            destination_journal.read_bytes() + b'{"key":"k2","pa'
        )
        _write_journal(tmp_path / "a", [("k3", {"v": 3})])
        report = merge_cache(tmp_path / "dst", [tmp_path / "a"])
        assert report.chunks_added == 1
        assert set(_journal_payloads(tmp_path / "dst")) == {"k1", "k3"}

    def test_missing_source_is_an_error(self, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            merge_cache(tmp_path / "dst", [tmp_path / "nowhere"])

    def test_bare_journal_file_as_source(self, tmp_path):
        _write_journal(tmp_path / "a", [("k1", {"v": 1})])
        report = merge_cache(tmp_path / "dst", [tmp_path / "a" / "journal.jsonl"])
        assert report.chunks_added == 1

    def test_empty_source_directory_is_fine(self, tmp_path):
        (tmp_path / "a").mkdir()
        report = merge_cache(tmp_path / "dst", [tmp_path / "a"])
        assert report.chunks_added == 0

    def test_merge_into_open_store(self, tmp_path):
        _write_journal(tmp_path / "a", [("k1", {"v": 1})])
        store = ExperimentStore(tmp_path / "dst")
        try:
            report = merge_cache(tmp_path / "dst", [tmp_path / "a"], store=store)
            assert report.chunks_added == 1
            assert store.stats.chunk_writes == 1
        finally:
            store.close()

    def test_summary_mentions_the_counts(self, tmp_path):
        _write_journal(tmp_path / "a", [("k1", {"v": 1})])
        report = merge_cache(tmp_path / "dst", [tmp_path / "a"])
        assert "1 chunk(s) added" in report.summary()


class TestMergeRunsTier:
    def test_run_entries_copy_skip_and_conflict(self, tmp_path):
        source = tmp_path / "a"
        (source / "runs").mkdir(parents=True)
        (source / "runs" / "r1.json").write_text('{"result": 1}')
        report = merge_cache(tmp_path / "dst", [source])
        assert report.runs_copied == 1
        again = merge_cache(tmp_path / "dst", [source])
        assert again.runs_copied == 0
        assert again.runs_skipped == 1
        (source / "runs" / "r1.json").write_text('{"result": 2}')
        with pytest.raises(StoreError, match="merge conflict for run entry r1"):
            merge_cache(tmp_path / "dst", [source])


class TestEndToEndShardMerge:
    def test_union_of_shard_stores_equals_single_process_journal(
        self, tmp_path, sd_params, nsd_params
    ):
        tasks = [
            SweepTask(sd_params, LVState(24, 16), 50, seed=1, label="a"),
            SweepTask(nsd_params, LVState(33, 31), 50, seed=2, label="b"),
            SweepTask(sd_params, LVState(36, 28), 50, seed=3, label="c"),
            SweepTask(nsd_params, LVState(48, 32), 50, seed=4, label="d"),
        ]

        def run(store, shards=1, shard_index=0):
            scheduler = SweepScheduler(
                batch_size=32,
                sweep_batch=32,
                store=store,
                shards=shards,
                shard_index=shard_index,
            )
            try:
                return scheduler.run_sweep(tasks)
            finally:
                scheduler.shutdown()

        reference_store = ExperimentStore(tmp_path / "reference")
        run(reference_store)
        reference_store.close()
        for shard_index in range(2):
            store = ExperimentStore(tmp_path / f"shard-{shard_index}")
            run(store, shards=2, shard_index=shard_index)
            store.close()
        merge_cache(
            tmp_path / "merged",
            [tmp_path / "shard-0", tmp_path / "shard-1"],
        )
        assert _journal_payloads(tmp_path / "merged") == _journal_payloads(
            tmp_path / "reference"
        )


class TestReadSources:
    def test_chunk_miss_falls_back_to_read_only_sources(
        self, tmp_path, sd_params
    ):
        tasks = [SweepTask(sd_params, LVState(24, 16), 50, seed=1)]
        source_store = ExperimentStore(tmp_path / "shard")
        scheduler = SweepScheduler(batch_size=32, sweep_batch=32, store=source_store)
        try:
            reference = scheduler.run_sweep(tasks)
        finally:
            scheduler.shutdown()
            source_store.close()
        source_bytes = (tmp_path / "shard" / "journal.jsonl").read_bytes()

        view = ExperimentStore(tmp_path / "dst", read_sources=(tmp_path / "shard",))
        scheduler = SweepScheduler(batch_size=32, sweep_batch=32, store=view)
        try:
            replayed = scheduler.run_sweep(tasks)
        finally:
            scheduler.shutdown()
            view.close()
        for first, second in zip(reference, replayed):
            assert_bitwise_equal(first, second)
        # Every chunk came from the source; nothing was recomputed.
        assert view.stats.chunk_misses == 0
        # The source was never appended, healed, or truncated.
        assert (tmp_path / "shard" / "journal.jsonl").read_bytes() == source_bytes
        assert "read-only source" in view.describe()

    def test_contains_consults_sources(self, tmp_path):
        _write_journal(tmp_path / "src", [("k1", {"v": 1})])
        view = ExperimentStore(tmp_path / "dst", read_sources=(tmp_path / "src",))
        try:
            assert "k1" in view
            assert "k2" not in view
        finally:
            view.close()
