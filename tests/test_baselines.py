"""Tests for the baseline protocols and prior-work models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.andaur_resource import AndaurResourceModel
from repro.baselines.approximate_majority import ApproximateMajorityProtocol
from repro.baselines.cho_growth import ChoGrowthModel
from repro.baselines.exact_majority import ExactMajorityProtocol
from repro.baselines.population import PopulationProtocol
from repro.exceptions import InvalidConfigurationError, ModelError
from repro.lv.state import LVState


class TestPopulationProtocolScheduler:
    def test_initial_counts(self):
        protocol = ApproximateMajorityProtocol()
        counts = protocol.initial_counts(7, 3)
        assert counts["A"] == 7 and counts["B"] == 3 and counts["U"] == 0

    def test_initial_counts_validation(self):
        protocol = ApproximateMajorityProtocol()
        with pytest.raises(InvalidConfigurationError):
            protocol.initial_counts(0, 3)

    def test_population_of_one_rejected(self):
        protocol = ApproximateMajorityProtocol()
        with pytest.raises(InvalidConfigurationError):
            protocol.run(1, 0)

    def test_population_size_conserved(self):
        protocol = ApproximateMajorityProtocol()
        result = protocol.run(30, 20, rng=0)
        assert sum(result.final_counts.values()) == 50

    def test_unimplemented_protocol_raises(self):
        class Empty(PopulationProtocol):
            states = ("s",)

        with pytest.raises(NotImplementedError):
            Empty().run(2, 1, rng=0)


class TestApproximateMajority:
    def test_converges_to_majority_with_large_gap(self):
        protocol = ApproximateMajorityProtocol()
        wins = sum(
            protocol.run(70, 30, rng=seed).majority_consensus for seed in range(20)
        )
        assert wins >= 18

    def test_transition_table(self):
        protocol = ApproximateMajorityProtocol()
        assert protocol.transition("A", "B") == ("A", "U")
        assert protocol.transition("B", "A") == ("B", "U")
        assert protocol.transition("A", "U") == ("A", "A")
        assert protocol.transition("B", "U") == ("B", "B")
        assert protocol.transition("A", "A") == ("A", "A")
        assert protocol.transition("U", "A") == ("U", "A")

    def test_interaction_count_near_linear(self):
        """With a constant-fraction gap the protocol finishes in O(n log n) interactions."""
        protocol = ApproximateMajorityProtocol()
        n = 300
        result = protocol.run(200, 100, rng=1)
        assert result.converged
        assert result.interactions < 40 * n * np.log(n)

    def test_small_gap_can_fail(self):
        """With gap 2 the protocol errs with noticeable probability (approximate majority)."""
        protocol = ApproximateMajorityProtocol()
        outcomes = [protocol.run(26, 24, rng=seed).output for seed in range(40)]
        assert 1 in outcomes or outcomes.count(0) < 40


class TestExactMajority:
    def test_always_correct_with_positive_gap(self):
        protocol = ExactMajorityProtocol()
        for seed in range(15):
            result = protocol.run(27, 23, rng=seed)
            assert result.converged
            assert result.output == 0

    def test_correct_even_with_gap_one(self):
        protocol = ExactMajorityProtocol()
        wins = [protocol.run(16, 15, rng=seed).majority_consensus for seed in range(10)]
        assert all(wins)

    def test_transition_table(self):
        protocol = ExactMajorityProtocol()
        assert protocol.transition("A", "B") == ("a", "b")
        assert protocol.transition("B", "A") == ("b", "a")
        assert protocol.transition("A", "b") == ("A", "a")
        assert protocol.transition("B", "a") == ("B", "b")
        assert protocol.transition("a", "b") == ("a", "b")

    def test_outputs(self):
        protocol = ExactMajorityProtocol()
        assert protocol.output("A") == protocol.output("a") == 0
        assert protocol.output("B") == protocol.output("b") == 1


class TestChoGrowthModel:
    def test_params_have_no_deaths(self):
        model = ChoGrowthModel(beta=1.0, alpha=1.0)
        assert model.params.delta == 0.0
        assert model.params.is_self_destructive

    def test_rejects_invalid_rates(self):
        with pytest.raises(ModelError):
            ChoGrowthModel(beta=0.0, alpha=1.0)
        with pytest.raises(ModelError):
            ChoGrowthModel(beta=1.0, alpha=0.0)

    def test_threshold_shapes(self):
        assert ChoGrowthModel.original_threshold_shape(256) == pytest.approx(
            np.sqrt(256 * np.log(256))
        )
        assert ChoGrowthModel.improved_threshold_shape(256) == pytest.approx(np.log(256) ** 2)
        with pytest.raises(ModelError):
            ChoGrowthModel.original_threshold_shape(1)

    def test_polylog_gap_suffices(self):
        """The paper's improvement: a ~log^2 n gap already wins in the Cho et al. model."""
        model = ChoGrowthModel(beta=1.0, alpha=1.0)
        gap = 2 * int(np.log(256) ** 2 / 4)  # even gap of order log^2 n
        estimate = model.estimate(LVState.from_gap(256, gap), num_runs=150, rng=0)
        assert estimate.majority_probability > 0.85


class TestAndaurResourceModel:
    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            AndaurResourceModel(beta=1.0, alpha=0.0, carrying_capacity=100)
        with pytest.raises(ModelError):
            AndaurResourceModel(beta=1.0, alpha=1.0, carrying_capacity=1)

    def test_birth_propensity_is_bounded(self):
        model = AndaurResourceModel(beta=1.0, alpha=1.0, carrying_capacity=100)
        assert model.birth_propensity(50, 100) == 0.0
        assert model.birth_propensity(50, 50) == pytest.approx(25.0)
        assert model.birth_propensity(0, 10) == 0.0

    def test_initial_state_above_capacity_rejected(self):
        model = AndaurResourceModel(beta=1.0, alpha=1.0, carrying_capacity=50)
        with pytest.raises(ModelError):
            model.run(LVState(40, 20))

    def test_reaches_consensus(self):
        model = AndaurResourceModel(beta=1.0, alpha=1.0, carrying_capacity=400)
        result = model.run(LVState(60, 30), rng=0)
        assert result.reached_consensus
        assert result.final_state.has_consensus

    def test_sqrt_gap_wins_small_gap_does_not_always(self):
        model = AndaurResourceModel(beta=1.0, alpha=1.0, carrying_capacity=2000)
        n = 256
        large_gap = 2 * int(np.sqrt(n * np.log(n)) / 2)  # even gap ~ sqrt(n log n)
        small_gap = 2
        confident = model.estimate(LVState.from_gap(n, large_gap), num_runs=100, rng=1)
        marginal = model.estimate(LVState.from_gap(n, small_gap), num_runs=100, rng=2)
        assert confident.majority_probability > 0.9
        assert marginal.majority_probability < 0.75

    def test_estimate_validation(self):
        model = AndaurResourceModel(beta=1.0, alpha=1.0, carrying_capacity=100)
        with pytest.raises(ModelError):
            model.estimate(LVState(10, 5), num_runs=0)
