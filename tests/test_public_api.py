"""Tests of the top-level package surface: exports, metadata, examples."""

from __future__ import annotations

import ast
import importlib
import pathlib

import pytest

import repro

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

SUBPACKAGES = [
    "repro.crn",
    "repro.kinetics",
    "repro.chains",
    "repro.lv",
    "repro.consensus",
    "repro.baselines",
    "repro.analysis",
    "repro.experiments",
]


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name!r}"

    def test_subpackages_importable_and_consistent(self):
        for module_name in SUBPACKAGES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"

    def test_core_workflow_via_top_level_names_only(self):
        """The README quickstart works using only top-level exports."""
        params = repro.LVParams.self_destructive(beta=1.0, delta=1.0, alpha=1.0)
        estimate = repro.estimate_majority_probability(
            params, repro.LVState(30, 10), num_runs=40, rng=0
        )
        assert 0.0 <= estimate.majority_probability <= 1.0
        prediction = repro.predicted_threshold(params)
        assert prediction.upper_label == "log^2 n"

    def test_exceptions_form_a_hierarchy(self):
        assert issubclass(repro.ModelError, repro.ReproError)
        assert issubclass(repro.SimulationError, repro.ReproError)
        assert issubclass(repro.ThresholdSearchError, repro.ReproError)

    def test_public_functions_have_docstrings(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__"
            and callable(getattr(repro, name))
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert undocumented == []


class TestExampleScripts:
    def _example_files(self) -> list[pathlib.Path]:
        return sorted(EXAMPLES_DIR.glob("*.py"))

    def test_at_least_four_examples_exist(self):
        names = {path.name for path in self._example_files()}
        assert "quickstart.py" in names
        assert len(names) >= 4

    def test_examples_parse_and_define_main(self):
        for path in self._example_files():
            tree = ast.parse(path.read_text(), filename=str(path))
            function_names = {
                node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
            }
            assert "main" in function_names, f"{path.name} does not define main()"

    def test_examples_have_module_docstrings(self):
        for path in self._example_files():
            tree = ast.parse(path.read_text(), filename=str(path))
            assert ast.get_docstring(tree), f"{path.name} is missing a module docstring"

    def test_examples_only_import_public_modules(self):
        """Examples must not reach into pytest/test-only helpers."""
        for path in self._example_files():
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.module:
                    assert not node.module.startswith("tests"), (
                        f"{path.name} imports from the test suite"
                    )


class TestDocumentationArtifacts:
    ROOT = pathlib.Path(__file__).resolve().parent.parent

    @pytest.mark.parametrize("filename", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_documents_exist_and_are_substantial(self, filename):
        path = self.ROOT / filename
        assert path.exists(), f"{filename} is missing"
        assert len(path.read_text()) > 1000

    def test_design_doc_lists_every_registered_experiment(self):
        from repro.experiments.registry import EXPERIMENTS

        design = (self.ROOT / "DESIGN.md").read_text()
        for identifier in EXPERIMENTS:
            assert identifier in design, f"DESIGN.md does not mention experiment {identifier}"

    def test_experiments_doc_lists_every_registered_experiment(self):
        from repro.experiments.registry import EXPERIMENTS

        experiments_doc = (self.ROOT / "EXPERIMENTS.md").read_text()
        for identifier in EXPERIMENTS:
            assert identifier in experiments_doc, (
                f"EXPERIMENTS.md does not mention experiment {identifier}"
            )
