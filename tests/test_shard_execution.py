"""Chaos-style acceptance tests for sharded sweep execution.

The gate: for K in {2, 4}, K independent shard schedulers each executing
only their planned share of the grid — plus a union of their outputs —
yield results **bitwise-identical** to the single-process run, including
equal summed ``events_executed`` meters, across ``sweep_batch`` variations
and all three sweep entry points (fixed, adaptive, threshold search).
Sharding changes who computes a unit, never what it computes.
"""

from __future__ import annotations

import json
import sys
from dataclasses import replace

import pytest

from repro.analysis.statistics import PrecisionTarget
from repro.exceptions import ExperimentError
from repro.experiments.registry import run_experiment
from repro.experiments.scheduler import (
    SweepScheduler,
    ThresholdRequest,
    configure_default_scheduler,
    get_default_scheduler,
)
from repro.experiments.sweep import SweepTask, placeholder_ensemble
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedShardCrash,
    install_fault_plan,
)
from repro.lv.state import LVState
from repro.shard import run_shard_processes, shard_cache_dir
from repro.store import ExperimentStore
from repro.__main__ import main

from test_store import assert_bitwise_equal


def _tasks(sd_params, nsd_params):
    """A heterogeneous grid: mixed mechanisms, sizes, and budgets."""
    return [
        SweepTask(sd_params, LVState(40, 24), 120, seed=1, label="a"),
        SweepTask(nsd_params, LVState(33, 31), 120, seed=2, label="b"),
        SweepTask(sd_params, LVState(36, 28), 90, seed=3, label="c"),
        SweepTask(nsd_params, LVState(64, 48), 90, seed=4, label="d"),
        SweepTask(sd_params, LVState(20, 12), 150, seed=5, label="e"),
        SweepTask(nsd_params, LVState(24, 20), 150, seed=6, label="f"),
    ]


def _run_sharded(tasks, shards, entry, **config):
    """Run *entry* on every shard; return per-shard outputs, plans, events."""
    outputs, owned_sets, events = [], [], 0
    for shard_index in range(shards):
        scheduler = SweepScheduler(
            batch_size=64,
            shards=shards,
            shard_index=shard_index,
            **config,
        )
        try:
            outputs.append(entry(scheduler, tasks))
            owned_sets.append(set(scheduler.plan_task_shards(tasks).members(shard_index)))
            events += scheduler.events_executed
        finally:
            scheduler.shutdown()
    return outputs, owned_sets, events


class TestShardedSweepBitwise:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("sweep_batch", [48, 128])
    def test_union_matches_single_process(
        self, shards, sweep_batch, sd_params, nsd_params
    ):
        tasks = _tasks(sd_params, nsd_params)
        reference_scheduler = SweepScheduler(batch_size=64, sweep_batch=64)
        try:
            reference = reference_scheduler.run_sweep(tasks)
            reference_events = reference_scheduler.events_executed
        finally:
            reference_scheduler.shutdown()
        outputs, owned_sets, events = _run_sharded(
            tasks,
            shards,
            lambda scheduler, grid: scheduler.run_sweep(grid),
            sweep_batch=sweep_batch,
        )
        # Every task owned by exactly one shard.
        all_owned = [unit for owned in owned_sets for unit in owned]
        assert sorted(all_owned) == list(range(len(tasks)))
        # Owned rows are bitwise-identical to the single-process run —
        # whatever the sweep_batch — and the work meters add up exactly.
        for owned, results in zip(owned_sets, outputs):
            for index in owned:
                assert_bitwise_equal(results[index], reference[index])
        assert events == reference_events

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("engine", ["numpy", "auto"])
    def test_union_matches_across_backend_and_engine(
        self, shards, engine, sd_params, nsd_params
    ):
        # Mixed-backend grid: two units pinned to tau-leaping, the rest
        # exact — ownership must not disturb either backend's bit stream,
        # and the resolved engine never participates in the results.
        tasks = _tasks(sd_params, nsd_params)
        tasks[1] = replace(tasks[1], backend="tau")
        tasks[4] = replace(tasks[4], backend="tau")
        reference_scheduler = SweepScheduler(
            batch_size=64, sweep_batch=64, engine="numpy"
        )
        try:
            reference = reference_scheduler.run_sweep(tasks)
            reference_events = reference_scheduler.events_executed
        finally:
            reference_scheduler.shutdown()
        outputs, owned_sets, events = _run_sharded(
            tasks,
            shards,
            lambda scheduler, grid: scheduler.run_sweep(grid),
            sweep_batch=96,
            engine=engine,
        )
        for owned, results in zip(owned_sets, outputs):
            for index in owned:
                assert_bitwise_equal(results[index], reference[index])
        assert events == reference_events

    @pytest.mark.parametrize("shards", [2, 4])
    def test_adaptive_union_matches_single_process(
        self, shards, sd_params, nsd_params
    ):
        tasks = _tasks(sd_params, nsd_params)
        precision = PrecisionTarget(ci_half_width=0.06, max_replicates=400)
        reference_scheduler = SweepScheduler(
            batch_size=64, sweep_batch=64, precision=precision
        )
        try:
            reference = reference_scheduler.run_sweep_adaptive(tasks)
            reference_report = reference_scheduler.last_adaptive_report
        finally:
            reference_scheduler.shutdown()
        for shard_index in range(shards):
            scheduler = SweepScheduler(
                batch_size=64,
                sweep_batch=96,
                precision=precision,
                shards=shards,
                shard_index=shard_index,
            )
            try:
                results = scheduler.run_sweep_adaptive(tasks)
                owned = set(scheduler.plan_task_shards(tasks).members(shard_index))
                report = scheduler.last_adaptive_report
            finally:
                scheduler.shutdown()
            for index in owned:
                assert_bitwise_equal(results[index], reference[index])
                assert report.replicates[index] == reference_report.replicates[index]
                assert report.converged[index] == reference_report.converged[index]

    @pytest.mark.parametrize("shards", [2, 3])
    def test_threshold_union_matches_single_process(self, shards, sd_params):
        requests = [
            ThresholdRequest(sd_params, population_size=n, num_runs=60, seed=7)
            for n in (16, 24, 32, 48)
        ]
        reference_scheduler = SweepScheduler(batch_size=64, sweep_batch=64)
        try:
            reference = reference_scheduler.find_thresholds(requests)
        finally:
            reference_scheduler.shutdown()
        estimates = [None] * len(requests)
        for shard_index in range(shards):
            scheduler = SweepScheduler(
                batch_size=64,
                sweep_batch=64,
                shards=shards,
                shard_index=shard_index,
            )
            try:
                shard_estimates = scheduler.find_thresholds(requests)
                owned = scheduler.plan_threshold_shards(requests).members(shard_index)
            finally:
                scheduler.shutdown()
            for index, estimate in enumerate(shard_estimates):
                if index in owned:
                    assert estimates[index] is None
                    estimates[index] = estimate
                else:
                    # Placeholder: no search ran, nothing was measured.
                    assert estimate.threshold_gap is None
                    assert estimate.probes == {}
        for estimate, expected in zip(estimates, reference):
            assert estimate is not None
            assert estimate.threshold_gap == expected.threshold_gap
            assert set(estimate.probes) == set(expected.probes)

    def test_plan_is_identical_across_shard_processes(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params)
        plans = []
        for shard_index in range(3):
            scheduler = SweepScheduler(shards=3, shard_index=shard_index)
            try:
                plans.append(scheduler.plan_task_shards(tasks))
            finally:
                scheduler.shutdown()
        assert plans[0] == plans[1] == plans[2]


class TestPlaceholders:
    def test_placeholder_preserves_initial_counts(self, sd_params):
        result = placeholder_ensemble(sd_params, LVState(40, 24))
        assert result.final_x0.tolist() == [40]
        assert result.final_x1.tolist() == [24]
        assert result.total_events.tolist() == [0]
        assert result.termination_codes.tolist() == [2]
        assert not bool(result.hit_tie[0])


class TestSchedulerValidation:
    def test_shards_must_be_positive(self):
        with pytest.raises(ExperimentError):
            SweepScheduler(shards=0)

    def test_shard_index_must_be_in_range(self):
        with pytest.raises(ExperimentError):
            SweepScheduler(shards=2, shard_index=2)
        with pytest.raises(ExperimentError):
            SweepScheduler(shards=2, shard_index=-1)

    def test_shard_history_must_be_a_history(self):
        with pytest.raises(ExperimentError):
            SweepScheduler(shard_history={"not": "a history"})

    def test_configure_default_scheduler_keeps_and_resets(self):
        try:
            scheduler = configure_default_scheduler(shards=3, shard_index=1)
            assert (scheduler.shards, scheduler.shard_index) == (3, 1)
            # Unrelated reconfiguration keeps the shard settings.
            scheduler = configure_default_scheduler(jobs=1)
            assert (scheduler.shards, scheduler.shard_index) == (3, 1)
            scheduler = configure_default_scheduler(shards=1, shard_index=0)
            assert (scheduler.shards, scheduler.shard_index) == (1, 0)
        finally:
            configure_default_scheduler(shards=1, shard_index=0, shard_history=None)


class TestRegistryShardMode:
    def test_run_tier_is_skipped_for_shard_runs(self, tmp_path):
        store = ExperimentStore(tmp_path / "cache")
        try:
            configure_default_scheduler(
                store=store, shards=2, shard_index=0, sweep_batch=256
            )
            run_experiment("T1R2", scale="quick", seed=0, store=store)
            # Chunks journaled, but no run-tier entry: the result holds
            # placeholder rows for the other shard's units.
            assert store.stats.run_writes == 0
            assert not (tmp_path / "cache" / "runs").exists()
        finally:
            configure_default_scheduler(
                store=None, shards=1, shard_index=0, shard_history=None
            )
            get_default_scheduler().shutdown()
            store.close()


class TestShardProcessDriver:
    def test_slices_run_and_report_in_order(self, tmp_path):
        def command(slice_index, cache_dir):
            return [
                sys.executable,
                "-c",
                f"open({str(cache_dir / 'ran')!r}, 'w').write('{slice_index}')",
            ]

        results = run_shard_processes(
            command, slices=3, workers=2, cache_root=tmp_path
        )
        assert [result.slice_index for result in results] == [0, 1, 2]
        assert all(result.ok and result.attempts == 1 for result in results)
        for slice_index in range(3):
            assert (shard_cache_dir(tmp_path, slice_index) / "ran").exists()

    def test_failed_slice_retries_with_bumped_attempt(self, tmp_path):
        script = "import os, sys; sys.exit(0 if os.environ['REPRO_SHARD_ATTEMPT'] != '0' else 9)"

        def command(slice_index, cache_dir):
            return [sys.executable, "-c", script]

        results = run_shard_processes(
            command, slices=2, workers=2, cache_root=tmp_path, max_retries=1
        )
        assert all(result.ok and result.attempts == 2 for result in results)

    def test_permanent_failure_is_reported_not_raised(self, tmp_path):
        def command(slice_index, cache_dir):
            return [sys.executable, "-c", "import sys; print('boom'); sys.exit(3)"]

        results = run_shard_processes(
            command, slices=1, workers=1, cache_root=tmp_path, max_retries=1
        )
        assert not results[0].ok
        assert results[0].returncode == 3
        assert results[0].attempts == 2
        assert "boom" in results[0].output_tail

    def test_invalid_arguments_are_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            run_shard_processes(lambda i, d: [], slices=0, workers=1, cache_root=tmp_path)
        with pytest.raises(ExperimentError):
            run_shard_processes(lambda i, d: [], slices=1, workers=0, cache_root=tmp_path)
        with pytest.raises(ExperimentError):
            run_shard_processes(
                lambda i, d: [], slices=1, workers=1, cache_root=tmp_path, max_retries=-1
            )


class TestShardCliValidation:
    @pytest.mark.parametrize(
        "extra",
        [
            ["--shard-index", "0"],
            ["--shard-slices", "4"],
            ["--shard-history", "somewhere"],
            ["--shards", "0"],
            ["--shards", "2", "--shard-index", "2", "--cache-dir", "d"],
            ["--shards", "2", "--shard-slices", "1"],
            ["--shards", "2", "--shard-index", "0"],  # no --cache-dir
            ["--shards", "2", "--no-cache"],
            ["--shards", "2", "--shard-index", "0", "--cache-dir", "d", "--resume"],
            ["--shards", "2", "--shard-history", "/nonexistent/path", "--cache-dir", "d"],
        ],
    )
    def test_invalid_shard_flags_exit_with_code_2(self, extra):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "T1R2", *extra])
        assert excinfo.value.code == 2

    def test_driver_without_cache_dir_exits_with_code_2(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "T1R2", "--shards", "2"])
        assert excinfo.value.code == 2


class TestShardCliEndToEnd:
    def test_driver_matches_single_process_run(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        reference_dir = tmp_path / "reference"
        sharded_dir = tmp_path / "sharded"
        assert main(
            ["run", "T1R2", "--scale", "quick", "--cache-dir", str(reference_dir)]
        ) == 0
        reference_output = capsys.readouterr().out
        assert main(
            [
                "run",
                "T1R2",
                "--scale",
                "quick",
                "--shards",
                "2",
                "--cache-dir",
                str(sharded_dir),
            ]
        ) == 0
        sharded_output = capsys.readouterr().out
        assert "sharding: 4 work slice(s) on 2 concurrent shard process(es)" in sharded_output
        # The replay served everything from the merged shard journals.
        assert "0 miss(es)" in sharded_output
        # Identical result tables...
        table = lambda text: text[text.index("T1R2") : text.index("verdict")]
        assert table(sharded_output) == table(reference_output)
        # ...and identical journaled bits.
        assert _journal_digest(sharded_dir) == _journal_digest(reference_dir)

    def test_injected_shard_crashes_retry_to_identical_results(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        reference_dir = tmp_path / "reference"
        sharded_dir = tmp_path / "sharded"
        assert main(
            ["run", "T1R2", "--scale", "quick", "--cache-dir", str(reference_dir)]
        ) == 0
        capsys.readouterr()
        # Every slice's first attempt dies before touching its store; the
        # driver retries with the attempt bumped, where the plan no longer
        # fires — the distributed analogue of the worker-crash chaos gate.
        plan = FaultPlan(seed=11, shard_crash=FaultSpec(rate=1.0))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        assert main(
            [
                "run",
                "T1R2",
                "--scale",
                "quick",
                "--shards",
                "2",
                "--cache-dir",
                str(sharded_dir),
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "2 attempt(s)" in output
        assert "FAILED" not in output
        assert _journal_digest(sharded_dir) == _journal_digest(reference_dir)

    def test_shard_mode_crash_is_the_injected_exception(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_ATTEMPT", raising=False)
        install_fault_plan(FaultPlan(seed=5, shard_crash=FaultSpec(rate=1.0)))
        try:
            with pytest.raises(InjectedShardCrash):
                main(
                    [
                        "run",
                        "T1R2",
                        "--scale",
                        "quick",
                        "--shards",
                        "2",
                        "--shard-index",
                        "0",
                        "--cache-dir",
                        str(tmp_path / "shard"),
                    ]
                )
            # The crash fired before the store opened: no lock left behind.
            assert not (tmp_path / "shard" / "lock").exists()
            # A bumped attempt (the driver's retry) sails through.
            monkeypatch.setenv("REPRO_SHARD_ATTEMPT", "1")
            assert main(
                [
                    "run",
                    "T1R2",
                    "--scale",
                    "quick",
                    "--shards",
                    "2",
                    "--shard-index",
                    "0",
                    "--cache-dir",
                    str(tmp_path / "shard"),
                ]
            ) == 0
        finally:
            install_fault_plan(None)

    def test_merge_cache_command(self, tmp_path, capsys):
        from repro.store import ChunkJournal

        for name, payload in (("a", {"v": 1}), ("b", {"v": 2})):
            journal = ChunkJournal(tmp_path / name / "journal.jsonl")
            journal.append(f"k-{name}", payload)
            journal.close()
        assert main(
            [
                "merge-cache",
                str(tmp_path / "dst"),
                str(tmp_path / "a"),
                str(tmp_path / "b"),
            ]
        ) == 0
        assert "2 chunk(s) added" in capsys.readouterr().out

    def test_merge_cache_conflict_exits_with_code_1(self, tmp_path, capsys):
        from repro.store import ChunkJournal

        for name, payload in (("a", {"v": 1}), ("b", {"v": 2})):
            journal = ChunkJournal(tmp_path / name / "journal.jsonl")
            journal.append("same-key", payload)
            journal.close()
        assert main(
            [
                "merge-cache",
                str(tmp_path / "dst"),
                str(tmp_path / "a"),
                str(tmp_path / "b"),
            ]
        ) == 1
        assert "merge conflict" in capsys.readouterr().err


def _journal_digest(cache_dir):
    """Canonical ``{key: payload}`` content of a cache's journal."""
    contents = {}
    for line in (cache_dir / "journal.jsonl").read_text().splitlines():
        record = json.loads(line)
        contents[record["key"]] = json.dumps(record["payload"], sort_keys=True)
    return contents
