"""Tests for the fast two-species jump-chain simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidConfigurationError
from repro.lv.params import LVParams
from repro.lv.simulator import LVJumpChainSimulator
from repro.lv.state import LVState


class TestRunBasics:
    def test_reaches_consensus(self, sd_params):
        result = LVJumpChainSimulator(sd_params).run(LVState(30, 10), rng=0)
        assert result.reached_consensus
        assert result.final_state.has_consensus
        assert result.termination == "consensus"
        assert result.consensus_time == result.total_events

    def test_reproducible_with_seed(self, nsd_params):
        simulator = LVJumpChainSimulator(nsd_params)
        first = simulator.run(LVState(25, 15), rng=123)
        second = simulator.run(LVState(25, 15), rng=123)
        assert first.final_state == second.final_state
        assert first.total_events == second.total_events
        assert first.noise_individual == second.noise_individual

    def test_accepts_tuple_initial_state(self, sd_params):
        result = LVJumpChainSimulator(sd_params).run((20, 10), rng=1)
        assert result.initial_state == LVState(20, 10)

    def test_rejects_bad_initial_state(self, sd_params):
        with pytest.raises(InvalidConfigurationError):
            LVJumpChainSimulator(sd_params).run("bad", rng=1)

    def test_max_events_budget(self, sd_params):
        result = LVJumpChainSimulator(sd_params).run(LVState(500, 500), rng=1, max_events=10)
        assert result.total_events == 10
        assert result.termination == "max-events"
        assert not result.reached_consensus
        assert result.consensus_time is None

    def test_invalid_max_events(self, sd_params):
        with pytest.raises(ValueError):
            LVJumpChainSimulator(sd_params).run(LVState(5, 5), max_events=0)

    def test_start_at_consensus_is_noop(self, sd_params):
        result = LVJumpChainSimulator(sd_params).run(LVState(5, 0), rng=0)
        assert result.total_events == 0
        assert result.reached_consensus
        assert result.winner == 0
        assert result.majority_consensus

    def test_record_path(self, sd_params):
        result = LVJumpChainSimulator(sd_params).run(LVState(12, 6), rng=2, record_path=True)
        assert len(result.path) == result.total_events
        assert result.path[-1].state == result.final_state.counts


class TestEventAccounting:
    def test_event_counts_sum_to_total(self, sd_params):
        result = LVJumpChainSimulator(sd_params).run(LVState(40, 20), rng=3)
        assert result.individual_events + result.competitive_events == result.total_events

    def test_sd_competitive_noise_is_zero(self, sd_params):
        """Under SD interspecific competition, competitive events never change the gap."""
        simulator = LVJumpChainSimulator(sd_params)
        for seed in range(10):
            result = simulator.run(LVState(40, 24), rng=seed)
            assert result.noise_competitive == 0

    def test_nsd_competitive_noise_is_nonzero_typically(self, nsd_params):
        simulator = LVJumpChainSimulator(nsd_params)
        noises = [simulator.run(LVState(60, 40), rng=seed).noise_competitive for seed in range(10)]
        assert any(noise != 0 for noise in noises)

    def test_total_noise_equals_gap_change(self, sd_params, nsd_params):
        """F = Delta_0 - Delta_T by construction (Eq. 3)."""
        for params in (sd_params, nsd_params):
            simulator = LVJumpChainSimulator(params)
            for seed in range(5):
                result = simulator.run(LVState(30, 18), rng=seed)
                initial_gap = 30 - 18
                final_gap = result.final_state.x0 - result.final_state.x1
                assert result.noise_total == initial_gap - final_gap

    def test_bad_events_bounded_by_individual_events(self, sd_params):
        result = LVJumpChainSimulator(sd_params).run(LVState(50, 30), rng=5)
        assert 0 <= result.bad_noncompetitive_events <= result.individual_events

    def test_dead_heat_detection(self):
        """A dead heat is possible under SD competition and flagged as such."""
        params = LVParams.self_destructive(beta=0.0, delta=0.0, alpha=1.0)
        simulator = LVJumpChainSimulator(params)
        # With only SD interspecific reactions from (1, 1) the next event is
        # always the mutual annihilation, so every run is a dead heat.
        result = simulator.run(LVState(1, 1), rng=0)
        assert result.dead_heat
        assert not result.majority_consensus

    def test_births_and_deaths_attributed_to_species(self, sd_params):
        result = LVJumpChainSimulator(sd_params).run(LVState(30, 20), rng=7, record_path=True)
        birth0 = sum(1 for step in result.path if step.event == "birth0")
        death1 = sum(1 for step in result.path if step.event == "death1")
        assert result.births[0] == birth0
        assert result.deaths[1] == death1


class TestBatchHelpers:
    def test_run_batch_size(self, sd_params):
        results = LVJumpChainSimulator(sd_params).run_batch(LVState(20, 10), 7, rng=0)
        assert len(results) == 7

    def test_majority_success_count_matches_batch(self, sd_params):
        simulator = LVJumpChainSimulator(sd_params)
        count = simulator.majority_success_count(LVState(24, 8), 50, rng=11)
        assert 0 <= count <= 50
        assert count > 35  # a 3:1 majority should win most of the time

    def test_invalid_batch_size(self, sd_params):
        with pytest.raises(ValueError):
            LVJumpChainSimulator(sd_params).run_batch(LVState(5, 3), 0)


class TestTransitionDistribution:
    def test_probabilities_sum_to_one(self, sd_params, nsd_params):
        for params in (sd_params, nsd_params):
            simulator = LVJumpChainSimulator(params)
            for state in (LVState(1, 1), LVState(5, 3), LVState(10, 10)):
                distribution = simulator.transition_distribution(state)
                assert sum(distribution.values()) == pytest.approx(1.0)
                assert all(x0 >= 0 and x1 >= 0 for x0, x1 in distribution)

    def test_absorbing_state_self_loops(self):
        params = LVParams.self_destructive(beta=0.0, delta=1.0, alpha=1.0)
        simulator = LVJumpChainSimulator(params)
        assert simulator.transition_distribution(LVState(0, 0)) == {(0, 0): 1.0}

    def test_sd_inter_moves_both_down(self, sd_params):
        distribution = LVJumpChainSimulator(sd_params).transition_distribution(LVState(2, 2))
        assert (1, 1) in distribution

    def test_nsd_inter_moves_one_down(self, nsd_params):
        distribution = LVJumpChainSimulator(nsd_params).transition_distribution(LVState(2, 2))
        assert (1, 2) in distribution and (2, 1) in distribution
        assert (1, 1) not in distribution

    def test_matches_empirical_frequencies(self, nsd_params):
        simulator = LVJumpChainSimulator(nsd_params)
        state = LVState(4, 2)
        distribution = simulator.transition_distribution(state)
        rng = np.random.default_rng(5)
        counts: dict[tuple[int, int], int] = {}
        samples = 4000
        for _ in range(samples):
            result = simulator.run(state, rng=rng, max_events=1)
            counts[result.final_state.counts] = counts.get(result.final_state.counts, 0) + 1
        for target, probability in distribution.items():
            assert counts.get(target, 0) / samples == pytest.approx(probability, abs=0.03)


class TestStatisticalSanity:
    def test_majority_advantage_increases_with_gap(self, sd_params):
        simulator = LVJumpChainSimulator(sd_params)
        small = simulator.majority_success_count(LVState.from_gap(60, 2), 200, rng=1) / 200
        large = simulator.majority_success_count(LVState.from_gap(60, 30), 200, rng=2) / 200
        assert large > small

    def test_tie_is_a_coin_flip_for_neutral_systems(self, nsd_params):
        simulator = LVJumpChainSimulator(nsd_params)
        wins = 0
        runs = 400
        rng = np.random.default_rng(9)
        for _ in range(runs):
            result = simulator.run(LVState(20, 20), rng=rng)
            if result.winner == 0:
                wins += 1
        assert wins / runs == pytest.approx(0.5, abs=0.08)

    @settings(max_examples=20, deadline=None)
    @given(
        a=st.integers(min_value=1, max_value=40),
        b=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_invariants_hold_for_arbitrary_states(self, a, b, seed):
        params = LVParams.self_destructive(beta=1.0, delta=1.0, alpha=1.0)
        result = LVJumpChainSimulator(params).run(LVState(a, b), rng=seed)
        assert result.reached_consensus
        assert result.final_state.x0 == 0 or result.final_state.x1 == 0
        assert result.total_events == result.individual_events + result.competitive_events
        assert result.max_total_population >= max(a + b - 2, max(a, b))
        assert 0 <= result.bad_noncompetitive_events <= result.individual_events
