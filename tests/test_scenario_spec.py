"""Tests for the scenario spec layer (:mod:`repro.scenario.spec` / registry).

Covers the frozen :class:`Scenario` validation contract, fingerprint
stability, the lv2 table derivation (which must reproduce the lock-step
engine's historical literals bit for bit), the registry families, and seeded
property-based checks of the vectorized propensity tables against the naive
per-reaction reference — and against :class:`repro.crn.CompiledNetwork` —
for randomly generated k-species networks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crn.compiled import CompiledNetwork
from repro.crn.network import ReactionNetwork
from repro.crn.reaction import Reaction
from repro.crn.species import Species
from repro.exceptions import InvalidConfigurationError
from repro.lv.ensemble import _DX0_TABLE, _DX1_TABLE, _GOOD_TABLE
from repro.lv.params import LVParams
from repro.scenario.registry import (
    CATALYSIS_K_LIG,
    SCENARIOS,
    build_scenario,
    get_family,
    list_families,
    scenario_fingerprint,
    validate_scenario_state,
)
from repro.scenario.spec import (
    DEFAULT_SCENARIO,
    Scenario,
    lv2_change_tables,
    lv2_event_order,
    lv2_minority_good_table,
)

PARAMS = LVParams.self_destructive(beta=1.0, delta=1.0, alpha=1.0)


def _toy_scenario(**overrides) -> Scenario:
    """A minimal valid 2-species scenario, with keyword overrides."""
    fields = dict(
        name="toy",
        species=("A", "B"),
        rates=(1.0, 0.5),
        reactants=((1, 0), (1, 1)),
        changes=((+1, 0), (-1, -1)),
        good=(False, True),
        opinion_species=(0, 1),
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestScenarioValidation:
    def test_valid_scenario_constructs(self):
        scenario = _toy_scenario()
        assert scenario.num_species == 2
        assert scenario.num_reactions == 2
        assert not scenario.has_override

    def test_single_species_rejected(self):
        with pytest.raises(InvalidConfigurationError, match="at least 2 species"):
            _toy_scenario(
                species=("A",),
                reactants=((1,), (1,)),
                changes=((+1,), (-1,)),
                opinion_species=(0,),
            )

    def test_no_reactions_rejected(self):
        with pytest.raises(InvalidConfigurationError, match="at least one reaction"):
            _toy_scenario(rates=(), reactants=(), changes=(), good=())

    def test_table_shape_mismatch_rejected(self):
        with pytest.raises(InvalidConfigurationError, match="reactants"):
            _toy_scenario(reactants=((1, 0),))
        with pytest.raises(InvalidConfigurationError, match="changes"):
            _toy_scenario(changes=((+1, 0), (-1,)))
        with pytest.raises(InvalidConfigurationError, match="good"):
            _toy_scenario(good=(True,))

    def test_negative_rate_rejected(self):
        with pytest.raises(InvalidConfigurationError, match="finite and >= 0"):
            _toy_scenario(rates=(-1.0, 0.5))

    def test_order_above_two_rejected(self):
        with pytest.raises(InvalidConfigurationError, match="at most 2"):
            _toy_scenario(reactants=((1, 0), (2, 1)))
        with pytest.raises(InvalidConfigurationError, match="orders must be"):
            _toy_scenario(reactants=((3, 0), (1, 1)))

    def test_change_below_minus_order_rejected(self):
        # Reaction 0 consumes one A but removes two: counts could go negative.
        with pytest.raises(InvalidConfigurationError, match="removes more copies"):
            _toy_scenario(changes=((-2, 0), (-1, -1)))

    def test_rate_linear_shape_and_sign_validated(self):
        with pytest.raises(InvalidConfigurationError, match="rate_linear"):
            _toy_scenario(rate_linear=((0.0, 0.0),))
        with pytest.raises(InvalidConfigurationError, match="coefficients"):
            _toy_scenario(rate_linear=((0.0, -0.1), (0.0, 0.0)))

    def test_opinion_species_validated(self):
        with pytest.raises(InvalidConfigurationError, match="opinion"):
            _toy_scenario(opinion_species=(0,))
        with pytest.raises(InvalidConfigurationError, match="distinct"):
            _toy_scenario(opinion_species=(0, 0))
        with pytest.raises(InvalidConfigurationError, match="indices"):
            _toy_scenario(opinion_species=(0, 5))

    def test_has_override_requires_nonzero_coefficient(self):
        zero = _toy_scenario(rate_linear=((0.0, 0.0), (0.0, 0.0)))
        active = _toy_scenario(rate_linear=((0.0, 0.0), (0.0, 0.5)))
        assert not zero.has_override
        assert active.has_override


class TestFingerprint:
    def test_fingerprint_is_stable(self):
        assert _toy_scenario().fingerprint() == _toy_scenario().fingerprint()

    @pytest.mark.parametrize(
        "change",
        [
            {"name": "other"},
            {"rates": (1.0, 0.25)},
            {"reactants": ((0, 1), (1, 1))},
            {"changes": ((+1, 0), (0, -1))},
            {"good": (True, True)},
            {"opinion_species": (1, 0)},
            {"rate_linear": ((0.0, 0.0), (0.0, 0.5))},
        ],
    )
    def test_any_field_change_changes_fingerprint(self, change):
        assert _toy_scenario(**change).fingerprint() != _toy_scenario().fingerprint()

    def test_registry_fingerprint_distinguishes_families_and_params(self):
        other_params = LVParams.self_destructive(beta=1.0, delta=1.0, alpha=2.0)
        prints = {
            scenario_fingerprint(name, PARAMS) for name in SCENARIOS
        }
        assert len(prints) == len(SCENARIOS)
        assert scenario_fingerprint("lv2", PARAMS) != scenario_fingerprint(
            "lv2", other_params
        )


class TestLv2Derivation:
    """The derived lv2 tables must equal the lock-step engine's literals."""

    def test_change_tables_match_ensemble_literals(self):
        dx0, dx1 = lv2_change_tables()
        assert np.array_equal(dx0, _DX0_TABLE)
        assert np.array_equal(dx1, _DX1_TABLE)

    def test_good_table_matches_ensemble_literal(self):
        assert np.array_equal(lv2_minority_good_table(), _GOOD_TABLE)

    def test_event_order_is_the_engine_order(self):
        assert lv2_event_order() == (
            "birth0",
            "birth1",
            "death0",
            "death1",
            "inter0",
            "inter1",
            "intra0",
            "intra1",
        )

    def test_lv2_scenario_propensities_match_stack(self):
        scenario = build_scenario("lv2", PARAMS)
        state = np.array([7, 4])
        expected = np.array(
            [
                PARAMS.beta * 7.0,
                PARAMS.beta * 4.0,
                PARAMS.delta * 7.0,
                PARAMS.delta * 4.0,
                PARAMS.alpha0 * 7.0 * 4.0,
                PARAMS.alpha1 * 7.0 * 4.0,
                PARAMS.gamma0 * (7.0 * 6.0) * 0.5,
                PARAMS.gamma1 * (4.0 * 3.0) * 0.5,
            ]
        )
        assert np.array_equal(scenario.propensities(state), expected)


class TestRegistry:
    def test_default_family_first(self):
        families = list_families()
        assert families[0].name == DEFAULT_SCENARIO
        assert [f.name for f in families[1:]] == sorted(
            name for name in SCENARIOS if name != DEFAULT_SCENARIO
        )

    def test_unknown_family_rejected(self):
        with pytest.raises(InvalidConfigurationError, match="unknown scenario"):
            get_family("no-such-scenario")

    def test_build_scenario_is_cached(self):
        assert build_scenario("opinion3", PARAMS) is build_scenario("opinion3", PARAMS)

    def test_validate_scenario_state(self):
        assert validate_scenario_state("opinion3", [10, 5, 5]) == (10, 5, 5)
        with pytest.raises(InvalidConfigurationError, match="3 species"):
            validate_scenario_state("opinion3", (10, 5))
        with pytest.raises(InvalidConfigurationError, match="non-negative"):
            validate_scenario_state("opinion3", (10, -1, 5))

    def test_opinion_family_structure(self):
        scenario = build_scenario("opinion4", PARAMS)
        assert scenario.num_species == 4
        # 4 births + 4 deaths + 12 ordered competition pairs (gamma = 0).
        assert scenario.num_reactions == 20
        assert tuple(scenario.opinion_species) == (0, 1, 2, 3)

    def test_catalysis_family_has_affine_override(self):
        scenario = build_scenario("catalysis", PARAMS)
        assert scenario.has_override
        linear = scenario.linear_matrix
        assert linear[4, 2] == CATALYSIS_K_LIG
        assert linear[5, 2] == CATALYSIS_K_LIG
        # The catalyst is inert: no reaction changes its count.
        assert np.array_equal(scenario.change_matrix[:, 2], np.zeros(6, dtype=np.int64))

    def test_catalysis_propensities_shift_with_catalyst(self):
        scenario = build_scenario("catalysis", PARAMS)
        low = scenario.propensities([10, 8, 0])
        high = scenario.propensities([10, 8, 50])
        expected_boost = CATALYSIS_K_LIG * 50 * 10 * 8
        assert high[4] - low[4] == pytest.approx(expected_boost)
        assert np.array_equal(low[:4], high[:4])


def _random_scenario(rng: np.random.Generator) -> Scenario:
    """A random valid k-species mass-action scenario (satellite property tests)."""
    k = int(rng.integers(2, 6))
    m = int(rng.integers(2, 9))
    rates = tuple(float(rate) for rate in rng.uniform(0.0, 3.0, size=m))
    reactants: list[tuple[int, ...]] = []
    changes: list[tuple[int, ...]] = []
    for _ in range(m):
        row = [0] * k
        shape = rng.integers(0, 4)
        if shape == 1:
            row[int(rng.integers(k))] = 1
        elif shape == 2:
            first, second = rng.choice(k, size=2, replace=False)
            row[int(first)] = 1
            row[int(second)] = 1
        elif shape == 3:
            row[int(rng.integers(k))] = 2
        reactants.append(tuple(row))
        # Net change bounded below by -order per species keeps counts
        # non-negative; bounded above by +2 keeps products small.
        changes.append(
            tuple(int(rng.integers(-order, 3)) for order in row)
        )
    return Scenario(
        name="random",
        species=tuple(f"S{i}" for i in range(k)),
        rates=rates,
        reactants=tuple(reactants),
        changes=tuple(changes),
        good=tuple(bool(flag) for flag in rng.integers(0, 2, size=m)),
        opinion_species=(0, 1),
    )


def _network_from_scenario(scenario: Scenario) -> ReactionNetwork:
    """Rebuild a scenario's mass-action part as a crn ReactionNetwork.

    Reactant dicts are inserted in ascending species order, so the compiled
    first/second gather order matches the spec's canonical operand order.
    """
    network = ReactionNetwork(name="random")
    species = [network.add_species(Species(name)) for name in scenario.species]
    for m in range(scenario.num_reactions):
        reactants = {
            species[s]: order
            for s, order in enumerate(scenario.reactants[m])
            if order > 0
        }
        products = {
            species[s]: scenario.reactants[m][s] + scenario.changes[m][s]
            for s in range(scenario.num_species)
            if scenario.reactants[m][s] + scenario.changes[m][s] > 0
        }
        network.add_reaction(
            Reaction(reactants, products, rate=scenario.rates[m], label=f"r{m}")
        )
    return network


class TestPropensityProperties:
    """Seeded property tests: tables vs naive reference vs CompiledNetwork."""

    @pytest.mark.parametrize("seed", range(12))
    def test_rows_match_naive_reference_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        scenario = _random_scenario(rng)
        states = rng.integers(0, 40, size=(17, scenario.num_species))
        rows = scenario.propensity_rows(states)
        for w in range(states.shape[0]):
            reference = scenario.propensities(states[w])
            assert np.array_equal(rows[:, w], reference), (
                f"seed {seed}, state row {w}: vectorized table diverges "
                f"from the per-reaction reference"
            )

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_compiled_network(self, seed):
        rng = np.random.default_rng(seed + 1000)
        scenario = _random_scenario(rng)
        compiled = CompiledNetwork(_network_from_scenario(scenario))
        states = rng.integers(0, 40, size=(11, scenario.num_species))
        batch = compiled.propensities_batch(states)
        homogeneous = (scenario.reactant_matrix == 2).any(axis=1)
        for w in range(states.shape[0]):
            reference = scenario.propensities(states[w])
            # Unary and heterogeneous-binary reactions share the exact
            # operand order with the compiled path, so they must be bitwise
            # equal; the homogeneous-pair factor is grouped differently
            # (x*(x-1)*0.5 vs x*(x-1)/2 after the rate multiply), so those
            # rows only agree to rounding.
            assert np.array_equal(batch[w][~homogeneous], reference[~homogeneous])
            np.testing.assert_allclose(
                batch[w][homogeneous], reference[homogeneous], rtol=1e-12
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_affine_override_rows_match_reference(self, seed):
        rng = np.random.default_rng(seed + 2000)
        base = _random_scenario(rng)
        linear = rng.uniform(0.0, 0.1, size=(base.num_reactions, base.num_species))
        linear[rng.random(linear.shape) < 0.6] = 0.0
        scenario = Scenario(
            name="random-affine",
            species=base.species,
            rates=base.rates,
            reactants=base.reactants,
            changes=base.changes,
            good=base.good,
            opinion_species=base.opinion_species,
            rate_linear=tuple(tuple(float(c) for c in row) for row in linear),
        )
        states = rng.integers(0, 40, size=(9, scenario.num_species))
        rows = scenario.propensity_rows(states)
        for w in range(states.shape[0]):
            assert np.array_equal(rows[:, w], scenario.propensities(states[w]))
