"""Tests for the deterministic competitive LV model (Eq. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.lv.ode import DeterministicLV
from repro.lv.params import LVParams


class TestDerivedRates:
    def test_growth_rate(self, sd_params):
        assert DeterministicLV(sd_params).growth_rate == 0.0
        grow = LVParams.self_destructive(beta=2.0, delta=0.5, alpha=1.0)
        assert DeterministicLV(grow).growth_rate == 1.5

    def test_interspecific_rate_depends_on_mechanism(self, sd_params, nsd_params):
        assert DeterministicLV(sd_params).interspecific_rate == pytest.approx(1.0)
        assert DeterministicLV(nsd_params).interspecific_rate == pytest.approx(0.5)

    def test_requires_neutral_system(self):
        asymmetric = LVParams(beta=1.0, delta=1.0, alpha0=0.2, alpha1=0.8)
        with pytest.raises(ModelError):
            DeterministicLV(asymmetric)

    def test_invalid_threshold(self, sd_params):
        with pytest.raises(ModelError):
            DeterministicLV(sd_params, extinction_threshold=0.0)


class TestIntegration:
    def test_derivative_matches_equation(self):
        params = LVParams.self_destructive(beta=2.0, delta=1.0, alpha=1.0, gamma=0.5)
        model = DeterministicLV(params)
        x = np.array([3.0, 2.0])
        r, a, g = model.growth_rate, model.interspecific_rate, model.intraspecific_rate
        expected = np.array(
            [3.0 * (r - a * 2.0 - g * 3.0), 2.0 * (r - a * 3.0 - g * 2.0)]
        )
        assert np.allclose(model.derivative(0.0, x), expected)

    def test_majority_always_wins_deterministically(self):
        """With alpha' > gamma' the larger initial density wins for every gap (Sec. 2.1)."""
        params = LVParams.self_destructive(beta=2.0, delta=1.0, alpha=1.0)
        model = DeterministicLV(params)
        for gap in (2, 10, 50):
            winner = model.deterministic_winner((100.0 + gap, 100.0))
            assert winner == 0

    def test_minority_never_wins_deterministically(self):
        params = LVParams.self_destructive(beta=2.0, delta=1.0, alpha=1.0)
        model = DeterministicLV(params)
        assert model.deterministic_winner((100.0, 102.0)) == 1

    def test_integration_result_structure(self):
        params = LVParams.self_destructive(beta=2.0, delta=1.0, alpha=1.0)
        model = DeterministicLV(params)
        result = model.integrate((60.0, 40.0), t_max=50.0)
        assert result.densities.shape[1] == 2
        assert result.times[0] == 0.0
        assert result.winner == 0
        assert result.extinction_time is not None
        assert result.final_densities[0] > result.final_densities[1]

    def test_no_winner_within_short_horizon(self):
        params = LVParams.self_destructive(beta=2.0, delta=1.0, alpha=1.0)
        model = DeterministicLV(params)
        result = model.integrate((60.0, 40.0), t_max=1e-3)
        assert result.winner is None
        assert result.extinction_time is None

    def test_negative_densities_rejected(self, sd_params):
        with pytest.raises(ModelError):
            DeterministicLV(sd_params).integrate((-1.0, 2.0))

    def test_invalid_horizon(self, sd_params):
        with pytest.raises(ValueError):
            DeterministicLV(sd_params).integrate((1.0, 2.0), t_max=0.0)

    def test_coexistence_equilibrium(self):
        params = LVParams.self_destructive(beta=2.0, delta=1.0, alpha=1.0, gamma=1.0)
        model = DeterministicLV(params)
        equilibrium = model.coexistence_equilibrium()
        assert equilibrium is not None
        value = model.growth_rate / (model.interspecific_rate + model.intraspecific_rate)
        assert equilibrium == (pytest.approx(value), pytest.approx(value))
        # The derivative vanishes at the equilibrium.
        assert np.allclose(model.derivative(0.0, np.array(equilibrium)), 0.0, atol=1e-12)

    def test_no_equilibrium_without_growth(self, sd_params):
        assert DeterministicLV(sd_params).coexistence_equilibrium() is None
