"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lv.params import LVParams


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need one-off randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def sd_params() -> LVParams:
    """Neutral self-destructive LV system with unit rates and no intraspecific competition."""
    return LVParams.self_destructive(beta=1.0, delta=1.0, alpha=1.0)


@pytest.fixture
def nsd_params() -> LVParams:
    """Neutral non-self-destructive LV system with unit rates."""
    return LVParams.non_self_destructive(beta=1.0, delta=1.0, alpha=1.0)


@pytest.fixture
def sd_balanced_params() -> LVParams:
    """Self-destructive system with balanced intraspecific competition (Theorem 20)."""
    return LVParams.self_destructive(beta=1.0, delta=1.0, alpha=1.0, gamma=2.0)


@pytest.fixture
def nsd_balanced_params() -> LVParams:
    """Non-self-destructive system with gamma = 2*alpha (Theorem 23)."""
    return LVParams.non_self_destructive(beta=1.0, delta=1.0, alpha=1.0, gamma=2.0)
