"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command_parses(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_defaults(self):
        arguments = build_parser().parse_args(["run", "T1R3"])
        assert arguments.identifiers == ["T1R3"]
        assert arguments.scale == "quick"
        assert not arguments.all

    def test_estimate_requires_population_and_gap(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--population", "100"])

    def test_backend_flags_parse(self):
        arguments = build_parser().parse_args(
            ["run", "T1R3", "--backend", "tau", "--tau-epsilon", "0.05"]
        )
        assert arguments.backend == "tau"
        assert arguments.tau_epsilon == 0.05

    def test_backend_defaults_to_none(self):
        arguments = build_parser().parse_args(["run", "T1R3"])
        assert arguments.backend is None
        assert arguments.tau_epsilon is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "T1R3", "--backend", "fast"])


class TestCommands:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for identifier in ("T1R1-SD", "T1R2", "FIG-NOISE", "FIG-DOM"):
            assert identifier in output

    def test_run_without_selection_is_an_error(self, capsys):
        assert main(["run"]) == 2
        assert "no experiments selected" in capsys.readouterr().out

    def test_run_single_experiment_with_outputs(self, tmp_path, capsys):
        json_path = tmp_path / "results.json"
        report_path = tmp_path / "report.md"
        exit_code = main(
            [
                "run",
                "FIG-NOISE",
                "--scale",
                "quick",
                "--seed",
                "1",
                "--json",
                str(json_path),
                "--report",
                str(report_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "FIG-NOISE" in output
        payload = json.loads(json_path.read_text())
        assert payload[0]["identifier"] == "FIG-NOISE"
        assert "FIG-NOISE" in report_path.read_text()

    def test_estimate_command(self, capsys):
        exit_code = main(
            [
                "estimate",
                "--mechanism",
                "sd",
                "--population",
                "128",
                "--gap",
                "32",
                "--runs",
                "100",
                "--seed",
                "0",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "rho estimate" in output
        assert "mean consensus time" in output

    def test_estimate_command_nsd_with_gamma(self, capsys):
        exit_code = main(
            [
                "estimate",
                "--mechanism",
                "nsd",
                "--population",
                "64",
                "--gap",
                "8",
                "--gamma",
                "0.5",
                "--runs",
                "50",
            ]
        )
        assert exit_code == 0
        assert "NSD" in capsys.readouterr().out

    def test_estimate_command_with_tau_backend(self, capsys):
        from repro.experiments.scheduler import (
            configure_default_scheduler,
            get_default_scheduler,
        )

        original = get_default_scheduler()
        try:
            exit_code = main(
                [
                    "estimate",
                    "--mechanism",
                    "sd",
                    "--population",
                    "60000",
                    "--gap",
                    "200",
                    "--runs",
                    "8",
                    "--seed",
                    "0",
                    "--backend",
                    "tau",
                ]
            )
            assert exit_code == 0
            assert "rho estimate" in capsys.readouterr().out
            assert get_default_scheduler().leap_events_executed > 0
        finally:
            configure_default_scheduler(
                backend=original.backend, tau_epsilon=original.tau_epsilon
            )

    def test_invalid_tau_epsilon_exits(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "estimate",
                    "--mechanism",
                    "sd",
                    "--population",
                    "64",
                    "--gap",
                    "8",
                    "--tau-epsilon",
                    "2.0",
                ]
            )
