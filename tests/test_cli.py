"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command_parses(self):
        arguments = build_parser().parse_args(["list"])
        assert arguments.command == "list"

    def test_run_command_defaults(self):
        arguments = build_parser().parse_args(["run", "T1R3"])
        assert arguments.identifiers == ["T1R3"]
        assert arguments.scale == "quick"
        assert not arguments.all

    def test_estimate_requires_population_and_gap(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--population", "100"])

    def test_backend_flags_parse(self):
        arguments = build_parser().parse_args(
            ["run", "T1R3", "--backend", "tau", "--tau-epsilon", "0.05"]
        )
        assert arguments.backend == "tau"
        assert arguments.tau_epsilon == 0.05

    def test_backend_defaults_to_none(self):
        arguments = build_parser().parse_args(["run", "T1R3"])
        assert arguments.backend is None
        assert arguments.tau_epsilon is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "T1R3", "--backend", "fast"])

    def test_fault_flags_parse(self):
        arguments = build_parser().parse_args(
            [
                "run",
                "T1R3",
                "--max-retries",
                "5",
                "--task-timeout",
                "30",
                "--on-fault",
                "fail",
            ]
        )
        assert arguments.max_retries == 5
        assert arguments.task_timeout == 30.0
        assert arguments.on_fault == "fail"

    def test_fault_flags_default_to_none(self):
        arguments = build_parser().parse_args(["run", "T1R3"])
        assert arguments.max_retries is None
        assert arguments.task_timeout is None
        assert arguments.on_fault is None

    def test_unknown_on_fault_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "T1R3", "--on-fault", "explode"])
        assert excinfo.value.code == 2


class TestCommands:
    def test_info_lists_registered_scenarios(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "scenarios:" in output
        for line in (
            "lv2        2 species (X0, X1)",
            "opinion3   3 species (X0, X1, X2)",
            "opinion4   4 species (X0, X1, X2, X3)",
            "catalysis  3 species (X0, X1, C)",
        ):
            assert line in output
        assert output.count("backends: exact, tau") == 4

    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for identifier in ("T1R1-SD", "T1R2", "FIG-NOISE", "FIG-DOM"):
            assert identifier in output

    def test_run_without_selection_is_an_error(self, capsys):
        assert main(["run"]) == 2
        assert "no experiments selected" in capsys.readouterr().out

    def test_run_single_experiment_with_outputs(self, tmp_path, capsys):
        json_path = tmp_path / "results.json"
        report_path = tmp_path / "report.md"
        exit_code = main(
            [
                "run",
                "FIG-NOISE",
                "--scale",
                "quick",
                "--seed",
                "1",
                "--json",
                str(json_path),
                "--report",
                str(report_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "FIG-NOISE" in output
        payload = json.loads(json_path.read_text())
        assert payload[0]["identifier"] == "FIG-NOISE"
        assert "FIG-NOISE" in report_path.read_text()

    def test_estimate_command(self, capsys):
        exit_code = main(
            [
                "estimate",
                "--mechanism",
                "sd",
                "--population",
                "128",
                "--gap",
                "32",
                "--runs",
                "100",
                "--seed",
                "0",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "rho estimate" in output
        assert "mean consensus time" in output

    def test_estimate_command_nsd_with_gamma(self, capsys):
        exit_code = main(
            [
                "estimate",
                "--mechanism",
                "nsd",
                "--population",
                "64",
                "--gap",
                "8",
                "--gamma",
                "0.5",
                "--runs",
                "50",
            ]
        )
        assert exit_code == 0
        assert "NSD" in capsys.readouterr().out

    def test_estimate_command_with_tau_backend(self, capsys):
        from repro.experiments.scheduler import (
            configure_default_scheduler,
            get_default_scheduler,
        )

        original = get_default_scheduler()
        try:
            exit_code = main(
                [
                    "estimate",
                    "--mechanism",
                    "sd",
                    "--population",
                    "60000",
                    "--gap",
                    "200",
                    "--runs",
                    "8",
                    "--seed",
                    "0",
                    "--backend",
                    "tau",
                ]
            )
            assert exit_code == 0
            assert "rho estimate" in capsys.readouterr().out
            assert get_default_scheduler().leap_events_executed > 0
        finally:
            configure_default_scheduler(
                backend=original.backend, tau_epsilon=original.tau_epsilon
            )

    def test_invalid_tau_epsilon_exits(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "estimate",
                    "--mechanism",
                    "sd",
                    "--population",
                    "64",
                    "--gap",
                    "8",
                    "--tau-epsilon",
                    "2.0",
                ]
            )


ESTIMATE_PREFIX = ["estimate", "--population", "64", "--gap", "8", "--runs", "20"]


class TestFlagValidationSymmetry:
    """Every numeric flag misuse exits with argparse's usage-error code 2."""

    @pytest.mark.parametrize(
        "extra",
        [
            ["--target-ci-width", "0"],
            ["--target-ci-width", "-0.1"],
            ["--target-ci-width", "1.5"],
            ["--target-ci-width", "0.1", "--max-replicates", "0"],
            ["--target-ci-width", "0.1", "--max-replicates", "-5"],
            ["--max-replicates", "100"],  # requires --target-ci-width
            ["--tau-epsilon", "0"],
            ["--tau-epsilon", "-0.5"],
            ["--tau-epsilon", "2.0"],
            ["--jobs", "0"],
            ["--jobs", "-1"],
            ["--sweep-batch", "0"],
            ["--max-retries", "-1"],
            ["--task-timeout", "0"],
            ["--task-timeout", "-2.5"],
        ],
    )
    def test_nonsensical_values_exit_with_code_2(self, extra):
        for argv in (["run", "T1R3", *extra], ESTIMATE_PREFIX + extra):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2


class TestCacheFlags:
    def test_cache_flags_parse(self, tmp_path):
        arguments = build_parser().parse_args(
            ["run", "T1R3", "--cache-dir", str(tmp_path), "--resume"]
        )
        assert arguments.cache_dir == tmp_path
        assert arguments.resume
        assert not arguments.no_cache

    @pytest.mark.parametrize(
        "extra", [["--resume"], ["--cache-dir", "somewhere"]]
    )
    def test_no_cache_conflicts_exit_with_code_2(self, extra):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "T1R3", "--no-cache", *extra])
        assert excinfo.value.code == 2

    def test_run_with_cache_dir_journals_and_resumes(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        argv = ["run", "FIG-ODE", "--seed", "2", "--cache-dir", str(cache)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "journaled" in first
        assert (cache / "journal.jsonl").exists()
        # Chunk-level replay without --resume: same results, zero simulation.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 miss(es)" in second
        # Run-level cache with --resume: the whole experiment is served.
        assert main(argv + ["--resume"]) == 0
        third = capsys.readouterr().out
        assert "1 run(s) from cache" in third

        def table(output):
            return [
                line for line in output.splitlines() if line.startswith("  ")
            ]

        assert table(first) == table(second) == table(third)

    def test_usage_error_never_acquires_the_store_lock(self, tmp_path):
        """Flag validation runs before the store opens, so no lock can leak."""
        from repro.store import ExperimentStore

        cache = tmp_path / "cache"
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "run",
                    "T1R3",
                    "--cache-dir",
                    str(cache),
                    "--target-ci-width",
                    "2.0",
                ]
            )
        assert excinfo.value.code == 2
        ExperimentStore(cache).close()  # lock free: nothing leaked

    def test_store_detached_and_closed_after_main(self, tmp_path, capsys):
        from repro.experiments.scheduler import get_default_scheduler
        from repro.store import ExperimentStore

        cache = tmp_path / "cache"
        assert main(ESTIMATE_PREFIX + ["--seed", "9", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert get_default_scheduler().store is None
        # The writer lock was released, so a fresh store can open the dir.
        ExperimentStore(cache).close()

    def test_estimate_with_cache_dir_replays_chunks(self, capsys, tmp_path):
        argv = ESTIMATE_PREFIX + ["--seed", "4", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "1 journaled" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "1 chunk hit(s)" in second
        assert first.splitlines()[:5] == second.splitlines()[:5]

    def test_environment_variable_names_default_cache(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main(ESTIMATE_PREFIX + ["--seed", "6"]) == 0
        assert (tmp_path / "env-cache" / "journal.jsonl").exists()
        capsys.readouterr()

    def test_no_cache_disables_environment_cache(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main(ESTIMATE_PREFIX + ["--seed", "6", "--no-cache"]) == 0
        assert not (tmp_path / "env-cache").exists()
        assert "cache:" not in capsys.readouterr().out


class TestFaultFlags:
    def test_fault_flags_configure_the_scheduler(self, capsys):
        from repro.experiments.scheduler import FaultTolerance, get_default_scheduler

        argv = ESTIMATE_PREFIX + [
            "--seed",
            "3",
            "--max-retries",
            "4",
            "--task-timeout",
            "45",
            "--on-fault",
            "fail",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        policy = get_default_scheduler().fault_tolerance
        assert policy.max_retries == 4
        assert policy.task_timeout == 45.0
        assert policy.on_fault == "fail"
        # The next flag-less invocation resets to the defaults: one run's
        # fault flags never leak into the next.
        assert main(ESTIMATE_PREFIX + ["--seed", "3"]) == 0
        capsys.readouterr()
        assert get_default_scheduler().fault_tolerance == FaultTolerance()

    def test_clean_run_prints_no_health_line(self, capsys):
        assert main(ESTIMATE_PREFIX + ["--seed", "3"]) == 0
        assert "health:" not in capsys.readouterr().out

    def test_chaos_run_prints_the_health_line(self, capsys, monkeypatch, tmp_path):
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan(seed=5, crash=FaultSpec(rate=1.0))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        argv = ESTIMATE_PREFIX + ["--seed", "3", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "health:" in output
        assert "retr" in output

    def test_chaos_run_matches_clean_output(self, capsys, monkeypatch):
        from repro.faults import FaultPlan, FaultSpec

        argv = ESTIMATE_PREFIX + ["--seed", "3"]
        assert main(argv) == 0
        clean = capsys.readouterr().out
        plan = FaultPlan(seed=5, crash=FaultSpec(rate=1.0))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        assert main(argv) == 0
        chaos = capsys.readouterr().out
        assert [line for line in chaos.splitlines() if not line.startswith("health:")] == (
            clean.splitlines()
        )


class TestVerifyCache:
    def _seed_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(ESTIMATE_PREFIX + ["--seed", "4", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        return cache

    def test_missing_journal_is_ok(self, tmp_path, capsys):
        assert main(["verify-cache", "--cache-dir", str(tmp_path / "nowhere")]) == 0
        assert "nothing to verify" in capsys.readouterr().out

    def test_clean_journal_exits_zero(self, tmp_path, capsys):
        cache = self._seed_cache(tmp_path, capsys)
        assert main(["verify-cache", "--cache-dir", str(cache)]) == 0
        output = capsys.readouterr().out
        assert "intact record(s)" in output
        assert "corrupt" not in output

    def test_corrupted_journal_exits_one_and_names_the_record(
        self, tmp_path, capsys
    ):
        from test_store import TestChunkJournal

        cache = self._seed_cache(tmp_path, capsys)
        journal = cache / "journal.jsonl"
        key = json.loads(journal.read_text().splitlines()[0])["key"]
        TestChunkJournal._corrupt_record(None, journal, key)
        assert main(["verify-cache", "--cache-dir", str(cache)]) == 1
        output = capsys.readouterr().out
        assert "checksum mismatch" in output
        assert key in output
        assert "recomputed on the next run" in output

    def test_environment_variable_names_the_cache(self, tmp_path, capsys, monkeypatch):
        cache = self._seed_cache(tmp_path, capsys)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
        assert main(["verify-cache"]) == 0
        assert "intact record(s)" in capsys.readouterr().out

    def test_verification_is_read_only(self, tmp_path, capsys):
        cache = self._seed_cache(tmp_path, capsys)
        journal = cache / "journal.jsonl"
        before = journal.read_bytes()
        assert main(["verify-cache", "--cache-dir", str(cache)]) == 0
        assert journal.read_bytes() == before
