"""Tests for the vectorized tau-leaping backend (:mod:`repro.lv.tau`).

The tau backend must be a *statistical* drop-in for the exact engines on
both competition mechanisms — same win probabilities, consensus-time and
event-count distributions within the shared Monte-Carlo tolerances — while
remaining seed-deterministic and honouring the same fused-equals-solo
per-member stream contract as the exact lock-step engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidConfigurationError
from repro.lv.ensemble import LVEnsembleSimulator, SweepMember, run_sweep_ensemble
from repro.lv.state import LVState
from repro.lv.tau import (
    BACKENDS,
    DEFAULT_TAU_POPULATION,
    LVTauEnsembleSimulator,
    resolve_backend,
    run_tau_sweep_ensemble,
)

from helpers_statistical import assert_statistically_close

#: Moderate population where both backends are fast enough for hundreds of
#: replicates, with gaps placing the win probability away from 0 and 1.
_AGREEMENT_N = 2000
_AGREEMENT_RUNS = 400


class TestResolveBackend:
    def test_explicit_backends_pass_through(self):
        assert resolve_backend("exact", 10**7) == "exact"
        assert resolve_backend("tau", 10) == "tau"

    def test_auto_switches_on_population(self):
        assert resolve_backend("auto", DEFAULT_TAU_POPULATION) == "tau"
        assert resolve_backend("auto", DEFAULT_TAU_POPULATION - 1) == "exact"

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            resolve_backend("approximate", 100)

    def test_backends_constant(self):
        assert BACKENDS == ("exact", "tau", "auto")


class TestStatisticalAgreement:
    """Tau vs exact ensembles, shared tolerance helper, both mechanisms."""

    @pytest.mark.parametrize("gap", [8, 60])
    def test_agrees_with_exact_sd(self, sd_params, gap):
        state = LVState((_AGREEMENT_N + gap) // 2, (_AGREEMENT_N - gap) // 2)
        tau = LVTauEnsembleSimulator(sd_params).run_ensemble(
            state, _AGREEMENT_RUNS, rng=11
        )
        exact = LVEnsembleSimulator(sd_params).run_ensemble(
            state, _AGREEMENT_RUNS, rng=11
        )
        assert_statistically_close(tau, exact, label=f"sd-gap{gap}")
        # Self-destructive competition has exactly zero competitive noise —
        # the approximation must preserve the identity, not just the mean.
        assert np.all(tau.noise_competitive == 0)

    @pytest.mark.parametrize("gap", [40])
    def test_agrees_with_exact_nsd(self, nsd_params, gap):
        state = LVState((_AGREEMENT_N + gap) // 2, (_AGREEMENT_N - gap) // 2)
        tau = LVTauEnsembleSimulator(nsd_params).run_ensemble(
            state, _AGREEMENT_RUNS, rng=13
        )
        exact = LVEnsembleSimulator(nsd_params).run_ensemble(
            state, _AGREEMENT_RUNS, rng=13
        )
        assert_statistically_close(tau, exact, label=f"nsd-gap{gap}")

    def test_agrees_with_exact_at_large_population(self, sd_params):
        """Overlapping-n cross-check in the regime the backend is built for."""
        state = LVState(30_060, 29_940)
        tau = LVTauEnsembleSimulator(sd_params).run_ensemble(state, 64, rng=5)
        exact = LVEnsembleSimulator(sd_params).run_ensemble(state, 64, rng=5)
        assert_statistically_close(tau, exact, label="sd-large")


class TestStreamContract:
    """Per-member streams: fused == solo, bitwise, like the exact engine."""

    def test_fused_members_equal_solo_runs(self, sd_params, nsd_params):
        members = [
            SweepMember(sd_params, LVState(3030, 2970), 12),
            SweepMember(nsd_params, LVState(2020, 1980), 8),
        ]
        seeds = [101, 202]
        fused = run_tau_sweep_ensemble(members, member_seeds=seeds)
        for member, seed, fused_result in zip(members, seeds, fused):
            solo = run_tau_sweep_ensemble([member], member_seeds=[seed])[0]
            for attribute in (
                "final_x0",
                "final_x1",
                "total_events",
                "leap_events",
                "termination_codes",
                "births",
                "deaths",
                "interspecific_events",
                "intraspecific_events",
                "bad_noncompetitive_events",
                "good_events",
                "noise_individual",
                "noise_competitive",
                "max_total_population",
                "min_gap_seen",
                "hit_tie",
            ):
                assert np.array_equal(
                    getattr(fused_result, attribute), getattr(solo, attribute)
                ), attribute

    def test_root_seed_determinism(self, sd_params):
        simulator = LVTauEnsembleSimulator(sd_params)
        first = simulator.run_ensemble(LVState(5050, 4950), 16, rng=42)
        second = simulator.run_ensemble(LVState(5050, 4950), 16, rng=42)
        assert np.array_equal(first.final_x0, second.final_x0)
        assert np.array_equal(first.total_events, second.total_events)
        third = simulator.run_ensemble(LVState(5050, 4950), 16, rng=43)
        assert not np.array_equal(first.total_events, third.total_events)


class TestTauEnsembleBehaviour:
    def test_all_replicas_reach_consensus(self, sd_params):
        result = LVTauEnsembleSimulator(sd_params).run_ensemble(
            LVState(60_300, 59_700), 16, rng=7
        )
        assert bool(result.reached_consensus.all())
        assert result.termination_counts() == {"consensus": 16}
        assert np.minimum(result.final_x0, result.final_x1).max() == 0

    def test_event_budget_is_metered_in_firings(self, sd_params):
        result = LVTauEnsembleSimulator(sd_params).run_ensemble(
            LVState(30_000, 30_000), 8, rng=3, max_events=5_000
        )
        assert result.termination_counts() == {"max-events": 8}
        # The budget is checked between leaps, so every replica fired at
        # least the budget and overshot by at most one leap.
        assert (result.total_events >= 5_000).all()
        assert (result.total_events <= 5_000 + 2 * 0.03 * 60_000).all()

    def test_leap_and_exact_events_split(self, sd_params):
        result = LVTauEnsembleSimulator(sd_params).run_ensemble(
            LVState(30_060, 29_940), 8, rng=9
        )
        assert result.leap_events is not None
        assert (result.leap_events > 0).all()
        assert (result.leap_events <= result.total_events).all()
        # The exact scalar endgame (population <= tail threshold) always
        # contributes events in this regime.
        assert (result.total_events > result.leap_events).all()

    def test_exact_tail_handoff_can_be_disabled(self, sd_params):
        result = LVTauEnsembleSimulator(
            sd_params, exact_tail_population=0
        ).run_ensemble(LVState(3030, 2970), 8, rng=21)
        assert bool(result.reached_consensus.all())
        assert result.leap_events is not None

    def test_initial_consensus_retires_immediately(self, sd_params):
        result = LVTauEnsembleSimulator(sd_params).run_ensemble(
            LVState(9, 0), 4, rng=1
        )
        assert (result.total_events == 0).all()
        assert bool(result.reached_consensus.all())

    def test_run_batch_materialises_run_results(self, sd_params):
        results = LVTauEnsembleSimulator(sd_params).run_batch(
            LVState(2020, 1980), 4, rng=2
        )
        assert len(results) == 4
        assert all(r.reached_consensus for r in results)

    def test_minority_majority_convention_respected(self, sd_params):
        """A species-1 majority flips the noise reference, as in the exact engine."""
        flipped = LVTauEnsembleSimulator(sd_params).run_ensemble(
            LVState(2970, 3030), 64, rng=17
        )
        reference = LVTauEnsembleSimulator(sd_params).run_ensemble(
            LVState(3030, 2970), 64, rng=17
        )
        # Neutral rates: the mirrored configurations tell the same story.
        assert flipped.majority_consensus.mean() == pytest.approx(
            reference.majority_consensus.mean(), abs=0.15
        )


class TestValidation:
    def test_epsilon_bounds(self, sd_params):
        with pytest.raises(InvalidConfigurationError):
            LVTauEnsembleSimulator(sd_params, epsilon=0.0)
        with pytest.raises(InvalidConfigurationError):
            LVTauEnsembleSimulator(sd_params, epsilon=1.0)

    def test_tail_population_bounds(self, sd_params):
        with pytest.raises(InvalidConfigurationError):
            LVTauEnsembleSimulator(sd_params, exact_tail_population=-1)

    def test_replicates_and_budget_validation(self, sd_params):
        simulator = LVTauEnsembleSimulator(sd_params)
        with pytest.raises(InvalidConfigurationError):
            simulator.run_ensemble(LVState(10, 10), 0, rng=0)
        with pytest.raises(ValueError):
            simulator.run_ensemble(LVState(10, 10), 4, rng=0, max_events=0)

    def test_sweep_validation(self, sd_params):
        with pytest.raises(InvalidConfigurationError):
            run_tau_sweep_ensemble([])
        member = SweepMember(sd_params, LVState(30, 10), 4)
        with pytest.raises(InvalidConfigurationError):
            run_tau_sweep_ensemble([member], member_seeds=[1, 2])
        with pytest.raises(InvalidConfigurationError):
            run_tau_sweep_ensemble([member], epsilon=2.0)
        with pytest.raises(InvalidConfigurationError):
            run_tau_sweep_ensemble([member], collect="wim")

    def test_exact_engine_results_carry_no_leap_events(self, sd_params):
        exact = run_sweep_ensemble(
            [SweepMember(sd_params, LVState(36, 24), 8)], rng=3
        )[0]
        assert exact.leap_events is None
