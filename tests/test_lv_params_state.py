"""Tests for LV parameterisation, states, models and regime classification."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import InvalidConfigurationError, ModelError
from repro.lv.models import LVModel
from repro.lv.params import CompetitionMechanism, LVParams
from repro.lv.regimes import Table1Row, classify_regime
from repro.lv.state import LVState


class TestLVParams:
    def test_neutral_constructor_splits_totals(self):
        params = LVParams.neutral(beta=1.0, delta=0.5, alpha=1.0, gamma=2.0)
        assert params.alpha0 == params.alpha1 == 0.5
        assert params.gamma0 == params.gamma1 == 1.0
        assert params.alpha == 1.0
        assert params.gamma == 2.0
        assert params.is_neutral

    def test_theta_and_alpha_min(self):
        params = LVParams(beta=0.3, delta=0.7, alpha0=0.2, alpha1=0.8)
        assert params.theta == pytest.approx(1.0)
        assert params.alpha_min == pytest.approx(0.2)

    def test_negative_rate_rejected(self):
        with pytest.raises(ModelError):
            LVParams(beta=-1.0, delta=1.0, alpha0=1.0, alpha1=1.0)

    def test_all_zero_rates_rejected(self):
        with pytest.raises(ModelError):
            LVParams(beta=0.0, delta=0.0, alpha0=0.0, alpha1=0.0)

    def test_mechanism_flags(self):
        sd = LVParams.self_destructive(beta=1, delta=1, alpha=1)
        nsd = LVParams.non_self_destructive(beta=1, delta=1, alpha=1)
        assert sd.is_self_destructive and not nsd.is_self_destructive
        assert sd.mechanism.short_name == "SD"
        assert nsd.mechanism.short_name == "NSD"

    def test_with_mechanism_and_with_rates(self):
        params = LVParams.self_destructive(beta=1, delta=1, alpha=1)
        flipped = params.with_mechanism(CompetitionMechanism.NON_SELF_DESTRUCTIVE)
        assert not flipped.is_self_destructive
        modified = params.with_rates(delta=0.0)
        assert modified.delta == 0.0 and modified.beta == 1.0

    def test_propensities_match_paper(self):
        params = LVParams(beta=1.0, delta=0.5, alpha0=0.3, alpha1=0.7, gamma0=0.2, gamma1=0.4)
        propensities = params.propensities(6, 4)
        assert propensities["birth0"] == pytest.approx(6.0)
        assert propensities["death1"] == pytest.approx(2.0)
        assert propensities["inter0"] == pytest.approx(0.3 * 24)
        assert propensities["intra0"] == pytest.approx(0.2 * 15)
        assert propensities["intra1"] == pytest.approx(0.4 * 6)
        assert params.total_propensity(6, 4) == pytest.approx(sum(propensities.values()))

    def test_propensities_reject_negative_counts(self):
        params = LVParams.self_destructive(beta=1, delta=1, alpha=1)
        with pytest.raises(ModelError):
            params.propensities(-1, 3)

    def test_describe_mentions_mechanism(self):
        assert "SD" in LVParams.self_destructive(beta=1, delta=1, alpha=1).describe()

    def test_intrinsic_growth_rate(self):
        assert LVParams.self_destructive(beta=2, delta=0.5, alpha=1).intrinsic_growth_rate == 1.5


class TestLVState:
    def test_basic_properties(self):
        state = LVState(12, 8)
        assert state.total == 20
        assert state.gap == 4
        assert state.abs_gap == 4
        assert state.minimum == 8
        assert state.maximum == 12
        assert state.majority_species == 0
        assert not state.has_consensus
        assert state.winner is None

    def test_tie_has_no_majority(self):
        assert LVState(5, 5).majority_species is None

    def test_consensus_and_winner(self):
        assert LVState(0, 7).winner == 1
        assert LVState(7, 0).winner == 0
        assert LVState(0, 0).has_consensus
        assert LVState(0, 0).winner is None

    def test_from_gap(self):
        state = LVState.from_gap(100, 10)
        assert state == LVState(55, 45)
        assert state.total == 100 and state.gap == 10

    def test_from_gap_parity_mismatch_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            LVState.from_gap(100, 9)

    def test_from_gap_out_of_range_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            LVState.from_gap(10, 12)
        with pytest.raises(InvalidConfigurationError):
            LVState.from_gap(0, 0)

    def test_negative_counts_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            LVState(-1, 3)

    def test_non_integer_counts_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            LVState(1.5, 3)

    def test_count_accessor(self):
        state = LVState(3, 9)
        assert state.count(0) == 3 and state.count(1) == 9
        with pytest.raises(InvalidConfigurationError):
            state.count(2)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=10_000))
    def test_gap_and_total_consistency(self, x0, x1):
        state = LVState(x0, x1)
        assert state.total == x0 + x1
        assert state.gap == x0 - x1
        assert state.minimum + state.maximum == state.total
        assert abs(state.gap) == state.maximum - state.minimum


class TestLVModel:
    def test_network_reaction_count(self, sd_params):
        assert LVModel(sd_params).network.num_reactions == 6

    def test_state_mapping_round_trip(self, sd_params):
        model = LVModel(sd_params)
        state = LVState(10, 4)
        mapping = model.state_mapping(state)
        assert model.state_from_mapping(mapping) == state

    def test_describe_contains_reactions(self, nsd_params):
        text = LVModel(nsd_params).describe()
        assert "birth:X0" in text and "inter:X1" in text


class TestRegimeClassification:
    def test_interspecific_only(self, sd_params, nsd_params):
        assert classify_regime(sd_params).row is Table1Row.INTERSPECIFIC_ONLY
        assert classify_regime(nsd_params).row is Table1Row.INTERSPECIFIC_ONLY

    def test_interspecific_only_bounds_differ_by_mechanism(self, sd_params, nsd_params):
        sd = classify_regime(sd_params)
        nsd = classify_regime(nsd_params)
        assert "log" in sd.upper_bound
        assert "sqrt(n)" in nsd.upper_bound

    def test_inter_and_intra(self, sd_balanced_params, nsd_balanced_params):
        sd = classify_regime(sd_balanced_params)
        nsd = classify_regime(nsd_balanced_params)
        assert sd.row is Table1Row.INTER_AND_INTRA
        assert sd.exact_consensus_probability
        assert nsd.exact_consensus_probability

    def test_inter_and_intra_unbalanced_is_not_exact(self):
        params = LVParams.self_destructive(beta=1, delta=1, alpha=1, gamma=0.5)
        classification = classify_regime(params)
        assert classification.row is Table1Row.INTER_AND_INTRA
        assert not classification.exact_consensus_probability

    def test_intraspecific_only(self):
        params = LVParams.self_destructive(beta=1, delta=1, alpha=0.0, gamma=1.0)
        classification = classify_regime(params)
        assert classification.row is Table1Row.INTRASPECIFIC_ONLY
        assert classification.lower_bound == "inf"

    def test_delta_zero_special_case(self):
        params = LVParams.self_destructive(beta=1, delta=0.0, alpha=1.0)
        assert classify_regime(params).row is Table1Row.INTERSPECIFIC_NO_DEATH

    def test_no_competition(self):
        params = LVParams(beta=1.0, delta=1.0, alpha0=0.0, alpha1=0.0)
        classification = classify_regime(params)
        assert classification.row is Table1Row.NO_COMPETITION
        assert classification.exact_consensus_probability
