"""Tests for the Monte-Carlo consensus estimator, gap traces and noise decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.consensus.estimator import (
    MajorityConsensusEstimator,
    estimate_majority_probability,
    summarise_runs,
)
from repro.consensus.gap import gap_trace_from_run
from repro.consensus.noise import decompose_noise
from repro.exceptions import EstimationError
from repro.lv.params import LVParams
from repro.lv.simulator import LVJumpChainSimulator
from repro.lv.state import LVState


class TestEstimator:
    def test_estimate_fields(self, sd_params):
        estimate = estimate_majority_probability(sd_params, LVState(30, 10), num_runs=80, rng=0)
        assert estimate.num_runs == 80
        assert estimate.success.trials == 80
        assert 0.0 <= estimate.majority_probability <= 1.0
        assert estimate.consensus_rate == 1.0
        assert estimate.initial_state == (30, 10)
        assert estimate.initial_gap == 20
        assert estimate.total_population == 40
        assert estimate.mean_consensus_time > 0
        assert estimate.q95_consensus_time >= estimate.mean_consensus_time * 0.5

    def test_reproducible_with_seed(self, nsd_params):
        first = estimate_majority_probability(nsd_params, LVState(25, 15), num_runs=50, rng=7)
        second = estimate_majority_probability(nsd_params, LVState(25, 15), num_runs=50, rng=7)
        assert first.majority_probability == second.majority_probability
        assert first.mean_consensus_time == second.mean_consensus_time

    def test_large_gap_gives_high_probability(self, sd_params):
        estimate = estimate_majority_probability(sd_params, LVState(90, 10), num_runs=100, rng=1)
        assert estimate.majority_probability >= 0.95

    def test_tiny_gap_close_to_half(self, nsd_params):
        # The true rho at gap 2 sits slightly above 1/2 (~0.57 by large-run
        # scalar simulation), so the tolerance is around that value, not 0.5.
        estimate = estimate_majority_probability(
            nsd_params, LVState.from_gap(100, 2), num_runs=400, rng=2
        )
        assert estimate.majority_probability == pytest.approx(0.55, abs=0.12)

    def test_meets_and_misses_target(self, sd_params):
        confident_win = estimate_majority_probability(
            sd_params, LVState(95, 5), num_runs=200, rng=3
        )
        assert confident_win.meets_target(0.8)
        coin_flip = estimate_majority_probability(
            sd_params, LVState.from_gap(50, 0), num_runs=200, rng=4
        )
        assert coin_flip.misses_target(0.9)

    def test_invalid_run_count(self, sd_params):
        estimator = MajorityConsensusEstimator(sd_params)
        with pytest.raises(EstimationError):
            estimator.run_batch(LVState(5, 3), 0)

    def test_invalid_confidence(self, sd_params):
        with pytest.raises(EstimationError):
            MajorityConsensusEstimator(sd_params, confidence=1.5)

    def test_summarise_empty_batch_rejected(self):
        with pytest.raises(EstimationError):
            summarise_runs([])

    def test_dead_heat_rate_counted(self):
        params = LVParams.self_destructive(beta=0.0, delta=0.0, alpha=1.0)
        estimate = estimate_majority_probability(params, LVState(1, 1), num_runs=20, rng=0)
        assert estimate.dead_heat_rate == 1.0
        assert estimate.majority_probability == 0.0

    def test_agrees_with_exact_solution(self, nsd_balanced_params):
        estimate = estimate_majority_probability(
            nsd_balanced_params, LVState(9, 3), num_runs=800, rng=6
        )
        assert estimate.success.lower <= 0.75 <= estimate.success.upper


class TestGapTrace:
    def test_requires_recorded_path(self, sd_params):
        result = LVJumpChainSimulator(sd_params).run(LVState(10, 5), rng=0)
        with pytest.raises(ValueError):
            gap_trace_from_run(result)

    def test_trace_consistency(self, nsd_params):
        result = LVJumpChainSimulator(nsd_params).run(LVState(20, 12), rng=1, record_path=True)
        trace = gap_trace_from_run(result)
        assert trace.initial_gap == 8
        assert len(trace.gaps) == result.total_events + 1
        assert trace.total_noise == result.noise_total
        assert trace.final_gap == result.final_state.x0 - result.final_state.x1
        assert trace.max_adverse_excursion >= 0

    def test_hit_tie_matches_simulator_flag(self, nsd_params):
        simulator = LVJumpChainSimulator(nsd_params)
        for seed in range(5):
            result = simulator.run(LVState(12, 10), rng=seed, record_path=True)
            assert gap_trace_from_run(result).hit_tie == result.hit_tie

    def test_minority_reference_when_species1_is_majority(self, sd_params):
        result = LVJumpChainSimulator(sd_params).run(LVState(5, 15), rng=2, record_path=True)
        trace = gap_trace_from_run(result)
        # Gaps are signed with respect to the initial majority (species 1 here).
        assert trace.initial_gap == 10


class TestNoiseDecomposition:
    def test_sd_has_no_competitive_noise(self, sd_params):
        decomposition = decompose_noise(sd_params, LVState(40, 24), num_runs=60, rng=0)
        assert np.all(decomposition.competitive_noise == 0)
        assert decomposition.std_competitive_noise == 0.0
        assert decomposition.num_runs == 60

    def test_nsd_competitive_noise_dominates(self, nsd_params):
        decomposition = decompose_noise(nsd_params, LVState(140, 116), num_runs=80, rng=1)
        assert decomposition.std_competitive_noise > decomposition.std_individual_noise

    def test_total_is_sum_of_components(self, nsd_params):
        decomposition = decompose_noise(nsd_params, LVState(30, 20), num_runs=40, rng=2)
        assert np.all(
            decomposition.total_noise
            == decomposition.individual_noise + decomposition.competitive_noise
        )

    def test_quantile_and_summary_row(self, sd_params):
        decomposition = decompose_noise(sd_params, LVState(30, 20), num_runs=40, rng=3)
        assert decomposition.quantile("total", 0.5) <= decomposition.quantile("total", 0.95)
        row = decomposition.summary_row()
        assert row["mechanism"] == "SD"
        assert row["n"] == 50

    def test_unknown_component_rejected(self, sd_params):
        decomposition = decompose_noise(sd_params, LVState(10, 6), num_runs=10, rng=4)
        with pytest.raises(EstimationError):
            decomposition.quantile("bogus", 0.5)

    def test_invalid_run_count(self, sd_params):
        with pytest.raises(EstimationError):
            decompose_noise(sd_params, LVState(10, 6), num_runs=0)
