"""End-to-end tests of the scenario experiments (SCEN-KOP, SCEN-CAT).

Quick-scale runs through the real registry and default scheduler: the whole
refactored stack — scenario tables, generic engines, chunk-key
fingerprinting, sweep planning — executes exactly as ``repro run`` would.
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment


class TestRegistration:
    def test_scenario_experiments_registered(self):
        assert "SCEN-KOP" in EXPERIMENTS
        assert "SCEN-CAT" in EXPERIMENTS

    def test_specs_carry_claims(self):
        for identifier in ("SCEN-KOP", "SCEN-CAT"):
            spec = get_experiment(identifier)
            assert spec.paper_claim
            assert spec.title


@pytest.fixture(scope="module")
def kop_result():
    return get_experiment("SCEN-KOP").run("quick", 0)


@pytest.fixture(scope="module")
def cat_result():
    return get_experiment("SCEN-CAT").run("quick", 0)


class TestScenKop:
    def test_shape_matches_theory(self, kop_result):
        assert kop_result.shape_matches_paper is True

    def test_rows_cover_both_k_and_both_backends(self, kop_result):
        ks = {row["k"] for row in kop_result.rows}
        backends = {row["backend"] for row in kop_result.rows}
        assert ks == {3, 4}
        assert backends == {"exact", "tau"}

    def test_win_rate_monotone_in_gap(self, kop_result):
        for k in (3, 4):
            rates = [
                row["majority win rate"]
                for row in kop_result.rows
                if row["k"] == k and row["backend"] == "exact"
            ]
            assert rates == sorted(rates) or all(
                after >= before - 0.08 for before, after in zip(rates, rates[1:])
            )
            assert rates[-1] > 1.0 / k + 0.15

    def test_result_serialises(self, kop_result):
        payload = kop_result.to_dict()
        assert payload["identifier"] == "SCEN-KOP"
        assert payload["shape_matches_paper"] is True


class TestScenCat:
    def test_shape_matches_theory(self, cat_result):
        assert cat_result.shape_matches_paper is True

    def test_events_decrease_with_catalyst(self, cat_result):
        events = [
            row["mean events"]
            for row in cat_result.rows
            if row["backend"] == "exact"
        ]
        assert events[-1] < events[0]

    def test_tau_row_present(self, cat_result):
        tau_rows = [row for row in cat_result.rows if row["backend"] == "tau"]
        assert len(tau_rows) == 1
        assert tau_rows[0]["consensus"] >= 0.95
