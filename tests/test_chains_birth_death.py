"""Tests for birth-death chains, nice chains and exact absorption solvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chains.absorption import (
    absorption_probabilities,
    expected_absorption_time,
    expected_births_before_absorption,
)
from repro.chains.birth_death import BirthDeathChain, BirthDeathSummary
from repro.chains.nice import certify_nice, lv_dominating_birth_death, simulate_extinction
from repro.exceptions import AbsorptionError, BudgetExceededError, ModelError


def pure_death_chain() -> BirthDeathChain:
    return BirthDeathChain(lambda n: 0.0, lambda n: 1.0, name="pure death")


def lazy_random_walk(p: float = 0.3, q: float = 0.4) -> BirthDeathChain:
    return BirthDeathChain(lambda n: p, lambda n: q, name="lazy walk")


def fast_dominating_chain() -> BirthDeathChain:
    """Dominating chain with alpha_min comparable to theta (no uphill stretch).

    With beta = delta = 0.25 and alpha0 = alpha1 = 1 the death probability
    (1/3) exceeds the birth probability everywhere, so simulated extinction
    times stay close to n and the Monte-Carlo tests below run in milliseconds.
    """
    return lv_dominating_birth_death(beta=0.25, delta=0.25, alpha0=1.0, alpha1=1.0)


class TestBirthDeathChainBasics:
    def test_absorbing_at_zero(self):
        chain = lazy_random_walk()
        assert chain.birth_probability(0) == 0.0
        assert chain.death_probability(0) == 0.0
        assert chain.holding_probability(0) == 1.0
        assert chain.is_absorbing(0)
        assert not chain.is_absorbing(3)

    def test_probability_validation(self):
        bad = BirthDeathChain(lambda n: 0.8, lambda n: 0.6)
        with pytest.raises(ModelError):
            bad.birth_probability(1)

    def test_negative_state_rejected(self):
        with pytest.raises(ModelError):
            lazy_random_walk().birth_probability(-1)

    def test_step_from_zero_stays(self):
        assert pure_death_chain().step(0, rng=0) == 0

    def test_step_moves_down_for_pure_death(self):
        assert pure_death_chain().step(5, rng=0) == 4

    def test_pure_death_extinction_time_is_initial_state(self):
        summary = pure_death_chain().simulate_to_absorption(9, rng=1)
        assert summary.extinction_time == 9
        assert summary.births == 0
        assert summary.deaths == 9
        assert summary.holding_steps == 0
        assert summary.max_state == 9

    def test_budget_exceeded(self):
        # A chain that can never die below state 5 within the budget.
        stuck = BirthDeathChain(lambda n: 0.0, lambda n: 0.0)
        with pytest.raises(BudgetExceededError):
            stuck.simulate_to_absorption(5, rng=0, max_steps=100)

    def test_sample_path_length(self):
        path = lazy_random_walk().sample_path(4, 20, rng=2)
        assert len(path) == 21
        assert path[0] == 4
        assert np.all(path >= 0)

    def test_summary_consistency_enforced(self):
        with pytest.raises(ValueError):
            BirthDeathSummary(
                initial_state=3, extinction_time=5, births=1, deaths=3, holding_steps=2, max_state=4
            )

    def test_transition_matrix_rows_sum_to_one(self):
        matrix = lazy_random_walk().transition_matrix(10)
        assert matrix.shape == (11, 11)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_transition_matrix_requires_positive_bound(self):
        with pytest.raises(ValueError):
            lazy_random_walk().transition_matrix(0)


class TestNiceChain:
    def test_lv_dominating_chain_matches_paper_formulas(self):
        beta, delta, alpha0, alpha1 = 1.0, 0.5, 0.4, 0.6
        chain = lv_dominating_birth_death(beta=beta, delta=delta, alpha0=alpha0, alpha1=alpha1)
        theta = beta + delta
        alpha = alpha0 + alpha1
        for m in (1, 2, 5, 17, 100):
            assert chain.birth_probability(m) == pytest.approx(theta / (alpha * m + theta))
            assert chain.death_probability(m) == pytest.approx(
                min(alpha0, alpha1) / (alpha + 2 * theta)
            )

    def test_lv_dominating_chain_probabilities_valid(self):
        chain = lv_dominating_birth_death(beta=2.0, delta=2.0, alpha0=0.1, alpha1=0.1)
        for m in range(1, 200):
            p = chain.birth_probability(m)
            q = chain.death_probability(m)
            assert 0.0 <= p and 0.0 <= q and p + q <= 1.0 + 1e-12

    def test_requires_positive_alpha_min(self):
        with pytest.raises(ModelError):
            lv_dominating_birth_death(beta=1.0, delta=1.0, alpha0=0.0, alpha1=1.0)

    def test_rejects_negative_rates(self):
        with pytest.raises(ModelError):
            lv_dominating_birth_death(beta=-1.0, delta=1.0, alpha0=1.0, alpha1=1.0)

    def test_certificate_confirms_niceness(self):
        chain = lv_dominating_birth_death(beta=1.0, delta=1.0, alpha0=0.5, alpha1=0.5)
        certificate = certify_nice(chain, max_state=500)
        assert certificate.is_nice
        assert certificate.death_constant > 0.0
        # C = max_n n * p(n) = max_n n*theta/(alpha*n+theta) <= theta/alpha = 2.
        assert certificate.birth_constant <= 2.0 + 1e-9

    def test_certificate_flags_non_nice_chain(self):
        # Constant birth probability does not satisfy p(n) <= C/n in spirit,
        # but the finite check reports the empirical constants; a chain with
        # zero death probability is flagged as not nice.
        chain = BirthDeathChain(lambda n: 0.2, lambda n: 0.0)
        certificate = certify_nice(chain, max_state=50)
        assert not certificate.is_nice

    def test_simulate_extinction_statistics(self):
        chain = fast_dominating_chain()
        stats = simulate_extinction(chain, 100, num_runs=50, rng=3)
        assert stats.num_runs == 50
        # E(n) >= n always; expected Theta(n) so the mean should not explode.
        assert stats.mean_extinction_time >= 100
        assert stats.mean_extinction_time < 100 * 30
        # Births should be logarithmic, i.e. tiny compared with n.
        assert stats.mean_births < 25

    def test_simulate_extinction_validates_runs(self):
        chain = lv_dominating_birth_death(beta=1.0, delta=1.0, alpha0=0.5, alpha1=0.5)
        with pytest.raises(ValueError):
            simulate_extinction(chain, 10, num_runs=0)


class TestExactAbsorption:
    def test_pure_death_expected_time_is_state(self):
        times = expected_absorption_time(pure_death_chain(), 20)
        assert np.allclose(times, np.arange(1, 21))

    def test_lazy_walk_times_are_increasing(self):
        times = expected_absorption_time(lazy_random_walk(0.2, 0.5), 30)
        assert np.all(np.diff(times) > 0)

    def test_expected_births_pure_death_is_zero(self):
        births = expected_births_before_absorption(pure_death_chain(), 20)
        assert np.allclose(births, 0.0)

    def test_expected_births_nice_chain_is_logarithmic(self):
        chain = fast_dominating_chain()
        births = expected_births_before_absorption(chain, 400)
        # Lemma 6: E[B(n)] = O(log n).  Check against C * H_n with a generous constant.
        harmonic = np.cumsum(1.0 / np.arange(1, 401))
        assert np.all(births <= 4.0 * harmonic + 1.0)
        # And it should grow, however slowly.
        assert births[-1] > births[0]

    def test_absorption_probability_approaches_one_for_subcritical(self):
        chain = lazy_random_walk(0.2, 0.5)
        probabilities = absorption_probabilities(chain, 60)
        assert probabilities[0] > 0.99
        assert np.all((0.0 <= probabilities) & (probabilities <= 1.0))

    def test_absorption_probability_below_one_for_supercritical(self):
        chain = lazy_random_walk(0.5, 0.2)
        probabilities = absorption_probabilities(chain, 60)
        assert probabilities[10] < 0.5

    def test_invalid_bound_rejected(self):
        with pytest.raises(AbsorptionError):
            expected_absorption_time(pure_death_chain(), 0)

    def test_monte_carlo_agrees_with_exact_expectation(self):
        chain = fast_dominating_chain()
        exact = expected_absorption_time(chain, 200)[49]  # start state 50
        stats = simulate_extinction(chain, 50, num_runs=300, rng=5)
        assert stats.mean_extinction_time == pytest.approx(exact, rel=0.15)


class TestNiceChainProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        beta=st.floats(min_value=0.0, max_value=5.0),
        delta=st.floats(min_value=0.0, max_value=5.0),
        alpha0=st.floats(min_value=0.05, max_value=5.0),
        alpha1=st.floats(min_value=0.05, max_value=5.0),
        state=st.integers(min_value=1, max_value=10_000),
    )
    def test_dominating_chain_is_always_a_valid_nice_chain(
        self, beta, delta, alpha0, alpha1, state
    ):
        chain = lv_dominating_birth_death(beta=beta, delta=delta, alpha0=alpha0, alpha1=alpha1)
        p = chain.birth_probability(state)
        q = chain.death_probability(state)
        assert 0.0 <= p <= 1.0
        assert 0.0 < q <= 1.0
        assert p + q <= 1.0 + 1e-12
        # Nice-chain conditions with explicit constants from Section 5.2.
        theta = beta + delta
        alpha = alpha0 + alpha1
        assert p <= (theta / alpha) / state + 1e-12
        assert q >= min(alpha0, alpha1) / (alpha + 2 * theta) - 1e-12
