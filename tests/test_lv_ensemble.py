"""Tests for the vectorized LV replica ensemble (:mod:`repro.lv.ensemble`).

The lock-step ensemble must be a statistical drop-in for the scalar
:class:`~repro.lv.simulator.LVJumpChainSimulator`: same win probabilities,
same consensus-time distribution, same event accounting — verified here on a
fixed seed budget with tolerances sized for the replicate counts used.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidConfigurationError
from repro.lv.ensemble import LVEnsembleResult, LVEnsembleSimulator
from repro.lv.simulator import LVJumpChainSimulator
from repro.lv.state import LVState

from helpers_statistical import assert_statistically_close


STATE = LVState(36, 24)


def _scalar_batch(params, state, num_runs, seed):
    return LVJumpChainSimulator(params).run_batch(state, num_runs, rng=seed)


def _ensemble_batch(params, state, num_runs, seed):
    return LVEnsembleSimulator(params).run_batch(state, num_runs, rng=seed)


class TestStatisticalAgreement:
    """Ensemble vs scalar simulator on a fixed seed budget.

    The tolerances live in :mod:`helpers_statistical` (shared with the
    heterogeneous sweep-engine tests): ~4 standard errors at this replicate
    count, which keeps the tests deterministic (fixed seeds) while still
    failing loudly on any systematic bias.
    """

    NUM_RUNS = 800

    @pytest.fixture(params=["sd", "nsd"])
    def params(self, request, sd_params, nsd_params):
        return sd_params if request.param == "sd" else nsd_params

    def test_statistically_identical_to_scalar(self, params):
        scalar = _scalar_batch(params, STATE, self.NUM_RUNS, seed=101)
        ensemble = _ensemble_batch(params, STATE, self.NUM_RUNS, seed=202)
        assert_statistically_close(scalar, ensemble, label="ensemble-vs-scalar")


class TestExactInvariants:
    def test_reproducible_from_seed(self, sd_params):
        first = _ensemble_batch(sd_params, STATE, 64, seed=5)
        second = _ensemble_batch(sd_params, STATE, 64, seed=5)
        assert first == second

    def test_different_seeds_differ(self, sd_params):
        first = _ensemble_batch(sd_params, STATE, 64, seed=5)
        second = _ensemble_batch(sd_params, STATE, 64, seed=6)
        assert first != second

    def test_event_counts_sum_to_total(self, nsd_params):
        ensemble = LVEnsembleSimulator(nsd_params).run_ensemble(STATE, 128, rng=3)
        total = (
            ensemble.births.sum(axis=1)
            + ensemble.deaths.sum(axis=1)
            + ensemble.interspecific_events
            + ensemble.intraspecific_events.sum(axis=1)
        )
        assert np.array_equal(total, ensemble.total_events)

    def test_sd_competitive_noise_is_zero(self, sd_params):
        """Self-destructive competition never moves the gap (Section 1.5)."""
        ensemble = LVEnsembleSimulator(sd_params).run_ensemble(STATE, 128, rng=4)
        assert np.all(ensemble.noise_competitive == 0)

    def test_nsd_competitive_noise_is_nonzero_typically(self, nsd_params):
        ensemble = LVEnsembleSimulator(nsd_params).run_ensemble(STATE, 128, rng=4)
        assert np.any(ensemble.noise_competitive != 0)

    def test_total_noise_equals_gap_change(self, nsd_params):
        """F_ind + F_comp telescopes to the signed gap change of the run."""
        state = LVState(30, 18)
        ensemble = LVEnsembleSimulator(nsd_params).run_ensemble(state, 96, rng=9)
        initial_gap = state.x0 - state.x1
        final_gap = ensemble.final_x0 - ensemble.final_x1
        assert np.array_equal(
            ensemble.noise_individual + ensemble.noise_competitive,
            initial_gap - final_gap,
        )

    def test_all_replicas_reach_consensus(self, sd_params):
        ensemble = LVEnsembleSimulator(sd_params).run_ensemble(STATE, 128, rng=11)
        assert bool(ensemble.reached_consensus.all())
        assert ensemble.termination_counts() == {"consensus": 128}

    def test_max_events_budget(self, sd_params):
        ensemble = LVEnsembleSimulator(sd_params).run_ensemble(
            LVState(400, 380), 32, rng=1, max_events=5
        )
        capped = ensemble.termination_codes == 2
        assert capped.any()
        assert np.all(ensemble.total_events[capped] == 5)

    def test_winners_match_final_states(self, sd_params):
        ensemble = LVEnsembleSimulator(sd_params).run_ensemble(STATE, 64, rng=13)
        winners = ensemble.winners
        assert np.all((ensemble.final_x1[winners == 0]) == 0)
        assert np.all((ensemble.final_x0[winners == 1]) == 0)

    def test_invalid_arguments_rejected(self, sd_params):
        simulator = LVEnsembleSimulator(sd_params)
        with pytest.raises(InvalidConfigurationError):
            simulator.run_ensemble(STATE, 0)
        with pytest.raises(ValueError):
            simulator.run_ensemble(STATE, 4, max_events=0)


class TestRunResultInterop:
    def test_run_batch_materialises_run_results(self, sd_params):
        results = _ensemble_batch(sd_params, STATE, 32, seed=21)
        assert len(results) == 32
        for result in results:
            assert result.params == sd_params
            assert result.initial_state == STATE
            event_total = (
                sum(result.births)
                + sum(result.deaths)
                + result.interspecific_events
                + sum(result.intraspecific_events)
            )
            assert event_total == result.total_events

    def test_to_run_results_matches_arrays(self, nsd_params):
        ensemble = LVEnsembleSimulator(nsd_params).run_ensemble(STATE, 48, rng=23)
        results = ensemble.to_run_results()
        assert [r.total_events for r in results] == list(ensemble.total_events)
        assert [r.noise_competitive for r in results] == list(ensemble.noise_competitive)
        assert [r.winner if r.winner is not None else -1 for r in results] == list(
            ensemble.winners
        )

    def test_concatenate_preserves_order(self, sd_params):
        simulator = LVEnsembleSimulator(sd_params)
        first = simulator.run_ensemble(STATE, 16, rng=31)
        second = simulator.run_ensemble(STATE, 24, rng=32)
        merged = LVEnsembleResult.concatenate([first, second])
        assert merged.num_replicates == 40
        assert np.array_equal(merged.total_events[:16], first.total_events)
        assert np.array_equal(merged.total_events[16:], second.total_events)

    def test_concatenate_rejects_mismatched_systems(self, sd_params, nsd_params):
        first = LVEnsembleSimulator(sd_params).run_ensemble(STATE, 8, rng=41)
        second = LVEnsembleSimulator(nsd_params).run_ensemble(STATE, 8, rng=42)
        with pytest.raises(InvalidConfigurationError):
            LVEnsembleResult.concatenate([first, second])

    def test_concatenate_rejects_empty(self):
        with pytest.raises(InvalidConfigurationError):
            LVEnsembleResult.concatenate([])
