"""Tests for the sweep scheduler (:class:`repro.experiments.scheduler.SweepScheduler`).

Covers the deterministic plumbing (mega-batch planning, per-(task, batch)
seeding, demultiplexing, worker-count independence), the grid-level
estimator entry points, the fused threshold sweeps, and the scheduler
lifecycle satellites (pool-per-sweep, jobs sanity check, events counter).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.consensus.threshold import ThresholdSearch, drive_threshold_searches
from repro.exceptions import ExperimentError, ThresholdSearchError
from repro.experiments.scheduler import (
    ReplicaScheduler,
    SweepScheduler,
    ThresholdRequest,
    _jobs_sanity_limit,
)
from repro.experiments.sweep import (
    MemberSpec,
    SweepTask,
    demux_mega_results,
    execute_mega_batch,
    plan_mega_batches,
)
from repro.lv.state import LVState


def _tasks(sd_params, nsd_params, num_runs=300):
    return [
        SweepTask(sd_params, LVState(40, 24), num_runs, seed=1, label="sd-64"),
        SweepTask(nsd_params, LVState(30, 18), num_runs, seed=2, label="nsd-48"),
        SweepTask(sd_params, LVState(20, 12), num_runs, seed=3, label="sd-32"),
    ]


class TestPlanning:
    def test_plan_splits_and_packs_in_task_order(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params, num_runs=300)
        plans = plan_mega_batches(tasks, batch_size=128, sweep_batch=256)
        flat = [spec for plan in plans for spec in plan]
        # Every task decomposes into 128+128+44; order within a task is kept.
        assert [spec.task_index for spec in flat] == [0, 0, 0, 1, 1, 1, 2, 2, 2]
        assert [spec.num_replicates for spec in flat] == [128, 128, 44] * 3
        for plan in plans:
            assert sum(spec.num_replicates for spec in plan) <= 256

    def test_plan_is_deterministic(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params)
        assert plan_mega_batches(tasks, batch_size=128, sweep_batch=512) == (
            plan_mega_batches(tasks, batch_size=128, sweep_batch=512)
        )

    def test_oversized_batch_gets_own_mega_batch(self, sd_params):
        tasks = [SweepTask(sd_params, LVState(20, 12), 500, seed=5)]
        plans = plan_mega_batches(tasks, batch_size=500, sweep_batch=128)
        assert len(plans) == 1 and plans[0][0].num_replicates == 500

    def test_plan_validation(self, sd_params):
        with pytest.raises(ExperimentError):
            plan_mega_batches([], batch_size=64)
        with pytest.raises(ExperimentError):
            plan_mega_batches(
                [SweepTask(sd_params, LVState(10, 6), 4)], batch_size=64, sweep_batch=0
            )
        with pytest.raises(ExperimentError):
            SweepTask(sd_params, LVState(10, 6), 0)

    def test_demux_validation(self, sd_params):
        spec = MemberSpec(0, sd_params, (10, 6), 4, seed=1, max_events=10)
        results = execute_mega_batch([spec])
        with pytest.raises(ExperimentError):
            demux_mega_results(2, [[spec]], [results])  # task 1 has no results
        with pytest.raises(ExperimentError):
            demux_mega_results(1, [[spec, spec]], [results])  # length mismatch


class TestRunSweep:
    def test_task_order_and_replicate_counts(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params, num_runs=100)
        results = SweepScheduler(batch_size=64).run_sweep(tasks)
        assert [r.num_replicates for r in results] == [100, 100, 100]
        for task, result in zip(tasks, results):
            assert result.params == task.params
            assert result.initial_state == task.initial_state

    def test_deterministic_in_task_seeds(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params, num_runs=150)
        first = SweepScheduler(batch_size=64).run_sweep(tasks)
        second = SweepScheduler(batch_size=64).run_sweep(tasks)
        for a, b in zip(first, second):
            assert np.array_equal(a.total_events, b.total_events)
            assert np.array_equal(a.final_x0, b.final_x0)

    def test_independent_of_worker_count(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params, num_runs=200)
        inline = SweepScheduler(jobs=1, batch_size=64, sweep_batch=128).run_sweep(tasks)
        pooled = SweepScheduler(jobs=2, batch_size=64, sweep_batch=128).run_sweep(tasks)
        for a, b in zip(inline, pooled):
            assert np.array_equal(a.total_events, b.total_events)
            assert np.array_equal(a.final_x0, b.final_x0)
            assert np.array_equal(a.noise_individual, b.noise_individual)

    def test_context_manager_reuses_pool(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params, num_runs=150)
        with SweepScheduler(jobs=2, batch_size=64, sweep_batch=128) as scheduler:
            first = scheduler.run_sweep(tasks)
            assert scheduler.pool.workers == 2
            executor = scheduler.pool.acquire(2)
            second = scheduler.run_sweep(tasks)
            # The same warm workers serve every sweep of the context.
            assert scheduler.pool.acquire(2) is executor
        assert scheduler.pool.workers == 0
        for a, b in zip(first, second):
            assert np.array_equal(a.total_events, b.total_events)

    def test_events_counter_accumulates(self, sd_params, nsd_params):
        scheduler = SweepScheduler()
        assert scheduler.events_executed == 0
        results = scheduler.run_sweep(_tasks(sd_params, nsd_params, num_runs=50))
        expected = sum(int(r.total_events.sum()) for r in results)
        assert scheduler.events_executed == expected > 0


class TestGridEntryPoints:
    def test_estimate_many_matches_per_config_statistics(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params, num_runs=600)
        fused = SweepScheduler().estimate_many(tasks)
        per_config = ReplicaScheduler()
        for task, estimate in zip(tasks, fused):
            alone = per_config.estimate(
                task.params, task.initial_state, task.num_runs, rng=task.seed
            )
            assert estimate.num_runs == task.num_runs
            assert abs(estimate.majority_probability - alone.majority_probability) < 0.08

    def test_decompose_many_matches_mechanism_structure(self, sd_params, nsd_params):
        tasks = _tasks(sd_params, nsd_params, num_runs=200)
        decompositions = SweepScheduler().decompose_many(tasks)
        assert all(d.num_runs == 200 for d in decompositions)
        assert np.all(decompositions[0].competitive_noise == 0)  # SD
        assert np.any(decompositions[1].competitive_noise != 0)  # NSD


class TestFusedThresholds:
    def test_find_thresholds_matches_per_config_search(self, sd_params, nsd_params):
        requests = [
            ThresholdRequest(sd_params, 64, num_runs=80, seed=7),
            ThresholdRequest(nsd_params, 64, num_runs=80, seed=8),
        ]
        fused = SweepScheduler().find_thresholds(requests)
        assert all(estimate.has_threshold for estimate in fused)
        # SD threshold never exceeds NSD at the same n (the paper's headline).
        assert fused[0].threshold_gap <= fused[1].threshold_gap
        # Same magnitude as the per-config search (different streams).
        per_config = ReplicaScheduler().find_threshold(
            sd_params, 64, num_runs=80, rng=7
        )
        assert per_config.threshold_gap is not None
        ratio = fused[0].threshold_gap / per_config.threshold_gap
        assert 0.4 <= ratio <= 2.5

    def test_fanout_searches_agree_with_bisection(self, sd_params):
        narrow = SweepScheduler().find_thresholds(
            [ThresholdRequest(sd_params, 64, num_runs=80, seed=11, fanout=1)]
        )[0]
        wide = SweepScheduler().find_thresholds(
            [ThresholdRequest(sd_params, 64, num_runs=80, seed=11, fanout=3)]
        )[0]
        assert narrow.has_threshold and wide.has_threshold
        assert 0.4 <= wide.threshold_gap / narrow.threshold_gap <= 2.5

    def test_multiplexer_identical_to_single_search(self, sd_params, nsd_params):
        """Sharing rounds must not change any search's probe decisions."""
        single = ThresholdSearch(sd_params, num_runs=60).find(64, rng=5)

        def runner(probes):
            return [
                ThresholdSearch(probe.params, num_runs=probe.num_runs)._estimator.estimate(
                    probe.initial_state, probe.num_runs, rng=probe.seed
                )
                for probe in probes
            ]

        multiplexed = drive_threshold_searches(
            [
                ThresholdSearch(sd_params, num_runs=60).search_steps(64, rng=5),
                ThresholdSearch(nsd_params, num_runs=60).search_steps(64, rng=6),
            ],
            runner,
        )
        assert multiplexed[0].threshold_gap == single.threshold_gap
        assert multiplexed[0].probes.keys() == single.probes.keys()

    def test_probe_runner_length_mismatch_rejected(self, sd_params):
        steps = ThresholdSearch(sd_params, num_runs=20).search_steps(16, rng=1)
        with pytest.raises(ThresholdSearchError):
            drive_threshold_searches([steps], lambda probes: [])

    def test_empty_request_list_rejected(self):
        with pytest.raises(ExperimentError):
            SweepScheduler().find_thresholds([])


class TestSchedulerValidation:
    def test_jobs_sanity_check(self):
        limit = _jobs_sanity_limit()
        with pytest.raises(ExperimentError, match="sanity limit"):
            ReplicaScheduler(jobs=limit + 1)
        with pytest.raises(ExperimentError):
            ReplicaScheduler(jobs=0)

    def test_sweep_batch_validation(self):
        with pytest.raises(ExperimentError):
            SweepScheduler(sweep_batch=0)

    def test_compaction_fraction_validation(self):
        with pytest.raises(ExperimentError):
            ReplicaScheduler(compaction_fraction=0.0)
        assert ReplicaScheduler(compaction_fraction=None).compaction_fraction is None
