"""Tests for the heterogeneous sweep ensemble (:func:`repro.lv.ensemble.run_sweep_ensemble`).

The sweep engine's contracts, in the order they are exercised here:

* a mixed-configuration mega-batch is a statistical drop-in for running each
  configuration through its own single-config ensemble (the property test,
  using the tolerance helper shared with ``test_lv_ensemble.py``),
* results are bitwise-identical for every compaction threshold (the RNG
  consumption-order contract), and
* demultiplexing preserves member order, per-member parameters, and exact
  event accounting under heterogeneity (mechanisms, sizes, budgets).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidConfigurationError
from repro.lv.ensemble import (
    LVEnsembleSimulator,
    SweepMember,
    run_sweep_ensemble,
)
from repro.lv.state import LVState

from helpers_statistical import assert_statistically_close


NUM_RUNS = 600


def _mixed_members(sd_params, nsd_params, num_runs=NUM_RUNS):
    """A genuinely heterogeneous sweep: both mechanisms, several (n, gap)."""
    return [
        SweepMember(sd_params, LVState(36, 24), num_runs),
        SweepMember(nsd_params, LVState(36, 24), num_runs),
        SweepMember(sd_params, LVState(80, 48), num_runs),
        SweepMember(nsd_params, LVState(20, 12), num_runs),
    ]


_RESULT_ARRAYS = (
    "final_x0",
    "final_x1",
    "total_events",
    "termination_codes",
    "births",
    "deaths",
    "interspecific_events",
    "intraspecific_events",
    "bad_noncompetitive_events",
    "good_events",
    "noise_individual",
    "noise_competitive",
    "max_total_population",
    "min_gap_seen",
    "hit_tie",
)


def _assert_identical(first, second):
    for name in _RESULT_ARRAYS:
        assert np.array_equal(getattr(first, name), getattr(second, name)), name


class TestHeterogeneousStatisticalIdentity:
    """The tentpole property: mega-batch == per-config batches, statistically."""

    def test_mega_batch_matches_per_config_ensembles(self, sd_params, nsd_params):
        members = _mixed_members(sd_params, nsd_params)
        fused = run_sweep_ensemble(members, rng=12345)
        for index, member in enumerate(members):
            alone = LVEnsembleSimulator(member.params).run_ensemble(
                member.initial_state, member.num_replicates, rng=777 + index
            )
            assert_statistically_close(
                alone, fused[index], label=f"member {index}"
            )

    def test_win_probabilities_match_scalar_tolerances(self, sd_params, nsd_params):
        """Per-config win probabilities from a mega-batch sit within the same
        Monte-Carlo band as an independently-seeded per-config run."""
        members = _mixed_members(sd_params, nsd_params)
        fused = run_sweep_ensemble(members, rng=5)
        refused = run_sweep_ensemble(members, rng=6)
        for index in range(len(members)):
            p_a = fused[index].majority_consensus.mean()
            p_b = refused[index].majority_consensus.mean()
            assert abs(p_a - p_b) < 0.08


class TestPerMemberStreams:
    """Every member owns its RNG streams: fused == solo, bitwise."""

    def test_member_seeds_match_solo_runs(self, sd_params, nsd_params):
        members = _mixed_members(sd_params, nsd_params, num_runs=250)
        seeds = [101, 202, 303, 404]
        fused = run_sweep_ensemble(members, member_seeds=seeds)
        for member, seed, result in zip(members, seeds, fused):
            solo = run_sweep_ensemble([member], rng=seed)[0]
            _assert_identical(result, solo)

    def test_results_independent_of_packing(self, sd_params, nsd_params):
        members = _mixed_members(sd_params, nsd_params, num_runs=150)
        seeds = [7, 8, 9, 10]
        together = run_sweep_ensemble(members, member_seeds=seeds)
        split = run_sweep_ensemble(
            members[:2], member_seeds=seeds[:2]
        ) + run_sweep_ensemble(members[2:], member_seeds=seeds[2:])
        for a, b in zip(together, split):
            _assert_identical(a, b)

    def test_member_seed_count_validated(self, sd_params):
        with pytest.raises(InvalidConfigurationError):
            run_sweep_ensemble(
                [SweepMember(sd_params, LVState(10, 6), 4)], member_seeds=[1, 2]
            )


class TestCompactionDeterminism:
    """Same root seed, different compaction thresholds -> identical results."""

    @pytest.mark.parametrize("fraction", [0.05, 0.5, 1.0, None])
    def test_single_config_invariant(self, sd_params, fraction):
        reference = LVEnsembleSimulator(sd_params).run_ensemble(
            LVState(60, 40), 300, rng=11
        )
        other = LVEnsembleSimulator(
            sd_params, compaction_fraction=fraction
        ).run_ensemble(LVState(60, 40), 300, rng=11)
        _assert_identical(reference, other)

    @pytest.mark.parametrize("fraction", [0.05, 0.5, None])
    def test_mega_batch_invariant(self, sd_params, nsd_params, fraction):
        members = _mixed_members(sd_params, nsd_params, num_runs=200)
        reference = run_sweep_ensemble(members, rng=21)
        other = run_sweep_ensemble(members, rng=21, compaction_fraction=fraction)
        for a, b in zip(reference, other):
            _assert_identical(a, b)

    def test_collect_modes_share_trajectories(self, nsd_params):
        members = [SweepMember(nsd_params, LVState(50, 30), 250)]
        full = run_sweep_ensemble(members, rng=31, collect="full")[0]
        win = run_sweep_ensemble(members, rng=31, collect="win")[0]
        assert np.array_equal(full.final_x0, win.final_x0)
        assert np.array_equal(full.final_x1, win.final_x1)
        assert np.array_equal(full.total_events, win.total_events)
        assert np.array_equal(full.termination_codes, win.termination_codes)


class TestHeterogeneousAccounting:
    def test_demux_preserves_member_order_and_params(self, sd_params, nsd_params):
        members = _mixed_members(sd_params, nsd_params, num_runs=40)
        results = run_sweep_ensemble(members, rng=3)
        assert [r.num_replicates for r in results] == [40, 40, 40, 40]
        for member, result in zip(members, results):
            assert result.params == member.params
            assert result.initial_state == member.initial_state

    def test_event_counts_sum_to_total_per_member(self, sd_params, nsd_params):
        members = _mixed_members(sd_params, nsd_params, num_runs=120)
        for result in run_sweep_ensemble(members, rng=9):
            total = (
                result.births.sum(axis=1)
                + result.deaths.sum(axis=1)
                + result.interspecific_events
                + result.intraspecific_events.sum(axis=1)
            )
            assert np.array_equal(total, result.total_events)

    def test_mechanism_specific_invariants_survive_fusion(self, sd_params, nsd_params):
        members = _mixed_members(sd_params, nsd_params, num_runs=200)
        results = run_sweep_ensemble(members, rng=13)
        # SD members: competitive noise identically zero; NSD: typically not.
        assert np.all(results[0].noise_competitive == 0)
        assert np.all(results[2].noise_competitive == 0)
        assert np.any(results[1].noise_competitive != 0)

    def test_per_member_event_budgets(self, sd_params, nsd_params):
        members = [
            SweepMember(sd_params, LVState(400, 380), 30, max_events=5),
            SweepMember(nsd_params, LVState(40, 20), 30),
        ]
        capped, uncapped = run_sweep_ensemble(members, rng=17)
        hit_cap = capped.termination_codes == 2
        assert hit_cap.any()
        assert np.all(capped.total_events[hit_cap] == 5)
        assert uncapped.reached_consensus.all()

    def test_matches_single_member_ensemble_layout(self, sd_params):
        """One-member sweeps and run_ensemble are the same code path."""
        member = SweepMember(sd_params, LVState(36, 24), 80)
        via_sweep = run_sweep_ensemble([member], rng=23)[0]
        via_simulator = LVEnsembleSimulator(sd_params).run_ensemble(
            LVState(36, 24), 80, rng=23
        )
        _assert_identical(via_sweep, via_simulator)

    def test_validation(self, sd_params):
        with pytest.raises(InvalidConfigurationError):
            run_sweep_ensemble([])
        with pytest.raises(InvalidConfigurationError):
            SweepMember(sd_params, LVState(10, 5), 0)
        with pytest.raises(InvalidConfigurationError):
            SweepMember(sd_params, LVState(10, 5), 4, max_events=0)
        with pytest.raises(InvalidConfigurationError):
            run_sweep_ensemble(
                [SweepMember(sd_params, LVState(10, 5), 4)], compaction_fraction=0.0
            )
        with pytest.raises(InvalidConfigurationError):
            run_sweep_ensemble(
                [SweepMember(sd_params, LVState(10, 5), 4)], collect="everything"
            )
